"""BBRv2 fluid model (Section 3.4 of the paper).

BBRv2 keeps BBRv1's two estimators (``BtlBw``/``x_btl`` and
``RTprop``/``tau_min``) and its ProbeRTT state, but restructures the
bandwidth-probing (ProbeBW) state to be less aggressive:

* probing periods are much longer — ``min(63 RTTs, 2..3 s)`` instead of
  eight RTTs;
* a period consists of a *cruise* → *probe up* → *probe down* → *cruise*
  sequence driven by measurements rather than by time: the probe raises the
  pacing gain to 5/4 until the inflight reaches 5/4 of the estimated BDP or
  loss exceeds 2 %, then the 3/4 drain gain is applied until the inflight
  falls back to ``min(BDP, 0.85 * inflight_hi)``;
* two additional inflight bounds couple the sending rate to loss:
  ``inflight_hi`` (``w_hi``, long-term, grows while probing succeeds and is
  multiplicatively decreased by 30 % under >2 % loss) and ``inflight_lo``
  (``w_lo``, short-term, active while cruising and decreased by 30 % per RTT
  under loss);
* the ProbeRTT inflight limit is half the estimated BDP instead of four
  segments.

The mode variables ``m_dwn`` (probe-down / draining) and ``m_crs``
(cruising) of the paper are kept as discrete states with crisp guarded
transitions (Eq. 26/27); the continuous dynamics of ``w_hi``/``w_lo``
(Eq. 29/30) are integrated as written.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable
from typing import Any

import numpy as np

from . import smooth
from .flow import FlowInputs, FlowInputsBatch, FlowState, FlowStateBatch, FluidCCA
from .network import Network

#: Duration of the ProbeRTT state (seconds).
PROBE_RTT_DURATION_S: float = 0.2
#: Interval without a new minimum-RTT sample after which ProbeRTT is entered.
PROBE_RTT_INTERVAL_S: float = 10.0
#: Maximum probing period in estimated RTTs.
MAX_PERIOD_RTTS: float = 63.0
#: Base of the wall-clock bound on the probing period (seconds).
BASE_PERIOD_S: float = 2.0
#: Pacing gain while probing for bandwidth.
PROBE_GAIN: float = 1.25
#: Pacing gain while draining (probe-down).
DRAIN_GAIN: float = 0.75
#: Inflight threshold (in estimated BDPs) that terminates the probe-up phase.
PROBE_INFLIGHT_GAIN: float = 1.25
#: Loss threshold that terminates the probe-up phase and triggers w_hi decrease.
LOSS_THRESHOLD: float = 0.02
#: Multiplicative decrease applied to inflight_hi / inflight_lo under loss.
BETA: float = 0.3
#: Headroom kept below inflight_hi when draining/cruising.
HEADROOM: float = 0.15
#: Congestion window in ProbeBW state, in estimated BDPs (the generic BBR cap).
CWND_GAIN: float = 2.0
#: Tolerance when deciding whether a latency sample establishes a new minimum.
RTT_SAMPLE_EPS_S: float = 1e-6
#: Cap on the exponent of the w_hi exponential-growth term (numerical guard).
MAX_GROWTH_EXPONENT: float = 20.0


@dataclass
class Bbr2Params:
    """Tunable parameters of the BBRv2 fluid model.

    Attributes:
        initial_btl_share: initial ``BtlBw`` estimate as a share of the
            bottleneck capacity (``None`` = 1.0, the post-start-up estimate;
            see :class:`repro.core.bbr1.Bbr1Params`).
        whi_init_bdp: initial ``inflight_hi`` in estimated-BDP multiples.
            ``None`` uses the value a successful probe would measure
            (``PROBE_INFLIGHT_GAIN``); Insight 5 is reproduced by choosing it
            buffer-dependent (what an unconstrained start-up would measure).
        loss_epsilon: offset applied to the loss sigmoid of Eq. (30) so that
            zero loss causes no ``w_lo`` decay.
        sigmoid_sharpness: sharpness of the smooth gates on time/volume terms.
        loss_sharpness: sharpness of the gates whose argument is a loss
            probability.  Loss probabilities live in [0, 1], so these gates
            need a much sharper sigmoid than the time-valued ones for the
            zero-loss case to yield a negligible reaction.
    """

    initial_btl_share: float | None = None
    whi_init_bdp: float | None = None
    loss_epsilon: float = 5e-3
    sigmoid_sharpness: float = smooth.DEFAULT_SHARPNESS
    loss_sharpness: float = 2000.0


class Bbr2Fluid(FluidCCA):
    """Fluid model of BBRv2."""

    name = "bbr2"

    def __init__(self, params: Bbr2Params | None = None) -> None:
        self.params = params or Bbr2Params()

    # ------------------------------------------------------------------ #
    # Initialisation
    # ------------------------------------------------------------------ #

    def initial_state(
        self, flow_index: int, num_flows: int, network: Network, params: Any
    ) -> FlowState:
        bottleneck = network.links[network.bottleneck_of(flow_index)]
        share = self.params.initial_btl_share
        if share is None:
            share = 1.0
        if not 0 < share <= 2.0:
            raise ValueError("initial_btl_share must be in (0, 2]")
        state = FlowState()
        extra = state.extra
        extra["x_btl"] = share * bottleneck.capacity_pps
        extra["x_max"] = 0.0
        extra["x_max_prev"] = 0.0
        extra["tau_min"] = network.propagation_rtt(flow_index)
        extra["t_pbw"] = 0.0
        extra["t_prt"] = 0.0
        extra["m_prt"] = 0.0
        extra["m_dwn"] = 0.0
        extra["m_crs"] = 0.0
        # Deterministic desynchronisation of the wall-clock probing period
        # (Eq. 24): agent i uses 2 + i/N seconds.
        extra["period_wall_s"] = BASE_PERIOD_S + flow_index / max(num_flows, 1)
        bdp = extra["x_btl"] * extra["tau_min"]
        whi_bdp = self.params.whi_init_bdp
        if whi_bdp is None:
            whi_bdp = PROBE_INFLIGHT_GAIN
        extra["w_hi"] = whi_bdp * bdp
        extra["w_lo"] = min(bdp, (1.0 - HEADROOM) * extra["w_hi"])
        extra["cwnd"] = CWND_GAIN * bdp
        state.rate = 0.0
        return state

    # ------------------------------------------------------------------ #
    # Per-step dynamics
    # ------------------------------------------------------------------ #

    def step(self, state: FlowState, inputs: FlowInputs) -> None:
        if not inputs.active:
            state.rate = 0.0
            return
        extra = state.extra
        dt = inputs.dt
        sharp = self.params.sigmoid_sharpness

        # --- RTprop estimation (Eq. 9) -------------------------------- #
        new_min_sample = inputs.tau_delayed < extra["tau_min"] - RTT_SAMPLE_EPS_S
        if inputs.tau_delayed < extra["tau_min"]:
            extra["tau_min"] = inputs.tau_delayed
        tau_min = extra["tau_min"]

        # --- ProbeRTT state machine (Eq. 11-13) ------------------------ #
        in_probe_rtt = extra["m_prt"] >= 0.5
        extra["t_prt"] += dt
        if new_min_sample and not in_probe_rtt:
            extra["t_prt"] = 0.0
        threshold = PROBE_RTT_DURATION_S if in_probe_rtt else PROBE_RTT_INTERVAL_S
        if extra["t_prt"] >= threshold:
            extra["m_prt"] = 0.0 if in_probe_rtt else 1.0
            extra["t_prt"] = 0.0
            in_probe_rtt = extra["m_prt"] >= 0.5

        # --- Probing-period clock (Eq. 16, 24) -------------------------- #
        period = min(MAX_PERIOD_RTTS * tau_min, extra["period_wall_s"])
        extra["t_pbw"] += dt
        if extra["t_pbw"] >= period:
            extra["t_pbw"] = 0.0
            extra["x_max_prev"] = extra["x_max"]
            extra["x_max"] = 0.0
            # A new probing period ends the cruise (Eq. 27, second term).
            extra["m_crs"] = 0.0
        measurement = state.rate if inputs.literal_xmax else inputs.delivery_rate
        if measurement > extra["x_max"]:
            extra["x_max"] = measurement

        # --- Current estimates and derived windows ---------------------- #
        x_btl = extra["x_btl"]
        bdp = x_btl * tau_min
        w_hi = extra["w_hi"]
        drain_target = min(bdp, (1.0 - HEADROOM) * w_hi)  # the paper's w_minus
        loss = min(1.0, max(0.0, inputs.path_loss))
        inflight = state.inflight

        # --- Mode transitions (Eq. 26-27), crisp ------------------------ #
        cruising = extra["m_crs"] >= 0.5
        draining = extra["m_dwn"] >= 0.5
        past_first_rtt = extra["t_pbw"] > tau_min
        if (
            not cruising
            and not draining
            and past_first_rtt
            and (inflight > PROBE_INFLIGHT_GAIN * bdp or loss > LOSS_THRESHOLD)
        ):
            extra["m_dwn"] = 1.0
            draining = True
        if draining:
            # Eq. (28): adopt the maximum delivery rate of the last two
            # periods as the new bottleneck-bandwidth estimate.
            target = max(extra["x_max"], extra["x_max_prev"])
            if target > 0.0:
                extra["x_btl"] += dt * (target - extra["x_btl"]) / max(tau_min, 1e-6)
            if inflight <= drain_target:
                extra["m_dwn"] = 0.0
                extra["m_crs"] = 1.0
                draining = False
                cruising = True
        x_btl = extra["x_btl"]
        bdp = x_btl * tau_min
        drain_target = min(bdp, (1.0 - HEADROOM) * w_hi)

        # --- inflight_hi dynamics (Eq. 29) ------------------------------ #
        growth_gate = (
            (0.0 if cruising else 1.0)
            * smooth.sigmoid(extra["t_pbw"] - tau_min, sharp / max(tau_min, 1e-6))
            * smooth.sigmoid(inflight - w_hi, sharp / max(bdp, 1.0))
        )
        exponent = min(extra["t_pbw"] / max(tau_min, 1e-6), MAX_GROWTH_EXPONENT)
        growth = growth_gate * (2.0 ** exponent)
        decrease = (
            smooth.sigmoid(loss - LOSS_THRESHOLD, self.params.loss_sharpness)
            * BETA
            / max(tau_min, 1e-6)
            * w_hi
        )
        extra["w_hi"] = max(1.0, w_hi + dt * (growth - decrease))
        w_hi = extra["w_hi"]

        # --- inflight_lo dynamics (Eq. 30) ------------------------------ #
        w_lo = extra["w_lo"]
        if cruising:
            loss_gate = smooth.sigmoid(
                loss - self.params.loss_epsilon, self.params.loss_sharpness
            )
            w_lo = w_lo + dt * (-loss_gate * BETA * w_lo / max(tau_min, 1e-6))
        else:
            w_lo = w_lo + dt * (drain_target - w_lo) / max(tau_min, 1e-6)
        extra["w_lo"] = max(1.0, w_lo)

        # --- Pacing rate (Eq. 25) --------------------------------------- #
        m_dwn = 1.0 if draining else 0.0
        probe_gate = smooth.sigmoid(
            extra["t_pbw"] - tau_min, sharp / max(tau_min, 1e-6)
        )
        pacing = x_btl * (
            1.0
            + (PROBE_GAIN - 1.0) * probe_gate * (1.0 - m_dwn)
            - (1.0 - DRAIN_GAIN) * m_dwn
        )

        # --- Congestion window and sending rate (Eq. 31-32, 14-15) ------ #
        if cruising:
            bound = extra["w_lo"]
        else:
            bound = w_hi
        cwnd_pbw = min(CWND_GAIN * bdp, bound)
        cwnd_prt = bdp / 2.0
        extra["cwnd"] = cwnd_prt if in_probe_rtt else cwnd_pbw
        tau = max(inputs.tau, 1e-9)
        if in_probe_rtt:
            state.rate = cwnd_prt / tau
        else:
            state.rate = min(cwnd_pbw / tau, pacing)
        self.update_inflight(state, inputs)

    # ------------------------------------------------------------------ #
    # Batched path
    # ------------------------------------------------------------------ #

    def batch_key(self) -> Hashable:
        # ``initial_btl_share``/``whi_init_bdp`` only affect ``initial_state``.
        return (
            "bbr2",
            self.params.sigmoid_sharpness,
            self.params.loss_sharpness,
            self.params.loss_epsilon,
        )

    def step_all(self, batch: FlowStateBatch, inputs: FlowInputsBatch) -> None:
        extras = batch.extras
        dt = inputs.dt
        sharp = self.params.sigmoid_sharpness
        rate_old = batch.rate

        # --- RTprop estimation (Eq. 9) -------------------------------- #
        tau_min_old = extras["tau_min"]
        new_min_sample = inputs.tau_delayed < tau_min_old - RTT_SAMPLE_EPS_S
        tau_min = np.minimum(tau_min_old, inputs.tau_delayed)
        tau_min_floor = np.maximum(tau_min, 1e-6)

        # --- ProbeRTT state machine (Eq. 11-13) ------------------------ #
        # Rare transitions (ProbeRTT toggles, period rollovers, fresh
        # minimum-RTT samples) sit behind ``any()`` guards: an all-False
        # ``np.where`` is the identity, so skipping it is bit-exact.
        m_prt_old = extras["m_prt"]
        in_probe_rtt = m_prt_old >= 0.5
        any_probe_rtt = in_probe_rtt.any()
        t_prt = extras["t_prt"] + dt
        if new_min_sample.any():
            t_prt = np.where(new_min_sample & ~in_probe_rtt, 0.0, t_prt)
        if any_probe_rtt:
            threshold = np.where(
                in_probe_rtt, PROBE_RTT_DURATION_S, PROBE_RTT_INTERVAL_S
            )
            expired = t_prt >= threshold
        else:
            expired = t_prt >= PROBE_RTT_INTERVAL_S
        if expired.any():
            # ``m_prt`` is exactly 0.0 or 1.0, so the toggle is ``1 - m_prt``.
            m_prt = np.where(expired, 1.0 - m_prt_old, m_prt_old)
            t_prt = np.where(expired, 0.0, t_prt)
            in_probe_rtt = m_prt >= 0.5
            any_probe_rtt = in_probe_rtt.any()
        else:
            m_prt = m_prt_old

        # --- Probing-period clock (Eq. 16, 24) -------------------------- #
        period = np.minimum(MAX_PERIOD_RTTS * tau_min, extras["period_wall_s"])
        t_pbw = extras["t_pbw"] + dt
        rollover = t_pbw >= period
        if rollover.any():
            x_max_prev = np.where(rollover, extras["x_max"], extras["x_max_prev"])
            x_max = np.where(rollover, 0.0, extras["x_max"])
            t_pbw = np.where(rollover, 0.0, t_pbw)
            m_crs = np.where(rollover, 0.0, extras["m_crs"])
        else:
            x_max_prev = extras["x_max_prev"]
            x_max = extras["x_max"]
            m_crs = extras["m_crs"]
        measurement = rate_old if inputs.literal_xmax else inputs.delivery_rate
        x_max = np.maximum(x_max, measurement)

        # --- Current estimates and derived windows ---------------------- #
        x_btl = extras["x_btl"]
        bdp = x_btl * tau_min
        w_hi_old = extras["w_hi"]
        drain_target = np.minimum(bdp, (1.0 - HEADROOM) * w_hi_old)
        loss = np.minimum(1.0, np.maximum(0.0, inputs.path_loss))
        inflight_old = batch.inflight

        # --- Mode transitions (Eq. 26-27), crisp ------------------------ #
        cruising = m_crs >= 0.5
        draining = extras["m_dwn"] >= 0.5
        past_first_rtt = t_pbw > tau_min
        start_drain = (
            ~cruising
            & ~draining
            & past_first_rtt
            & ((inflight_old > PROBE_INFLIGHT_GAIN * bdp) | (loss > LOSS_THRESHOLD))
        )
        draining = draining | start_drain
        if draining.any():
            # Eq. (28): while draining, adopt the max delivery rate of the
            # last two periods as the new bottleneck-bandwidth estimate.
            target = np.maximum(x_max, x_max_prev)
            x_btl = np.where(
                draining & (target > 0.0),
                x_btl + dt * (target - x_btl) / tau_min_floor,
                x_btl,
            )
            drained = draining & (inflight_old <= drain_target)
            draining = draining & ~drained
            cruising = cruising | drained
            m_crs = np.where(drained, 1.0, m_crs)
            bdp = x_btl * tau_min
            drain_target = np.minimum(bdp, (1.0 - HEADROOM) * w_hi_old)
        # ``m_dwn`` is 1.0 exactly while draining and 0.0 otherwise (flows
        # with ``m_dwn == 1`` are always in the ``draining`` set).
        m_dwn = draining.astype(float)

        # --- Gate sigmoids (Eq. 29/30), one stacked evaluation ---------- #
        n = t_pbw.shape[0]
        gates = smooth.scaled_sigmoid(
            np.concatenate(
                [
                    (t_pbw - tau_min) * (sharp / tau_min_floor),
                    (inflight_old - w_hi_old) * (sharp / np.maximum(bdp, 1.0)),
                    (loss - LOSS_THRESHOLD) * self.params.loss_sharpness,
                    (loss - self.params.loss_epsilon) * self.params.loss_sharpness,
                ]
            )
        )
        probe_gate = gates[:n]

        # --- inflight_hi dynamics (Eq. 29) ------------------------------ #
        growth_gate = (~cruising).astype(float) * probe_gate * gates[n : 2 * n]
        exponent = np.minimum(t_pbw / tau_min_floor, MAX_GROWTH_EXPONENT)
        growth = growth_gate * (2.0**exponent)
        decrease = gates[2 * n : 3 * n] * BETA / tau_min_floor * w_hi_old
        w_hi = np.maximum(1.0, w_hi_old + dt * (growth - decrease))

        # --- inflight_lo dynamics (Eq. 30) ------------------------------ #
        w_lo_old = extras["w_lo"]
        loss_gate = gates[3 * n :]
        w_lo = np.where(
            cruising,
            w_lo_old + dt * (-loss_gate * BETA * w_lo_old / tau_min_floor),
            w_lo_old + dt * (drain_target - w_lo_old) / tau_min_floor,
        )
        w_lo = np.maximum(1.0, w_lo)

        # --- Pacing rate (Eq. 25) --------------------------------------- #
        pacing = x_btl * (
            1.0
            + (PROBE_GAIN - 1.0) * probe_gate * (1.0 - m_dwn)
            - (1.0 - DRAIN_GAIN) * m_dwn
        )

        # --- Congestion window and sending rate (Eq. 31-32, 14-15) ------ #
        bound = np.where(cruising, w_lo, w_hi)
        cwnd_pbw = np.minimum(CWND_GAIN * bdp, bound)
        tau = np.maximum(inputs.tau, 1e-9)
        if any_probe_rtt:
            cwnd_prt = bdp / 2.0
            cwnd = np.where(in_probe_rtt, cwnd_prt, cwnd_pbw)
            rate = np.where(
                in_probe_rtt, cwnd_prt / tau, np.minimum(cwnd_pbw / tau, pacing)
            )
        else:
            cwnd = cwnd_pbw
            rate = np.minimum(cwnd_pbw / tau, pacing)
        inflight = self.update_inflight_all(batch, inputs, rate)

        active = inputs.active
        if active is None:
            extras["tau_min"] = tau_min
            extras["m_prt"] = m_prt
            extras["t_prt"] = t_prt
            extras["t_pbw"] = t_pbw
            extras["x_btl"] = x_btl
            extras["x_max"] = x_max
            extras["x_max_prev"] = x_max_prev
            extras["m_dwn"] = m_dwn
            extras["m_crs"] = m_crs
            extras["w_hi"] = w_hi
            extras["w_lo"] = w_lo
            extras["cwnd"] = cwnd
            batch.rate = rate
            batch.inflight = inflight
        else:
            for key, value in (
                ("tau_min", tau_min),
                ("m_prt", m_prt),
                ("t_prt", t_prt),
                ("t_pbw", t_pbw),
                ("x_btl", x_btl),
                ("x_max", x_max),
                ("x_max_prev", x_max_prev),
                ("m_dwn", m_dwn),
                ("m_crs", m_crs),
                ("w_hi", w_hi),
                ("w_lo", w_lo),
                ("cwnd", cwnd),
            ):
                extras[key] = np.where(active, value, extras[key])
            batch.rate = np.where(active, rate, 0.0)
            batch.inflight = np.where(active, inflight, batch.inflight)

    def congestion_window_all(self, batch: FlowStateBatch) -> np.ndarray:
        return batch.extras["cwnd"]

    def trace_fields_all(self, batch: FlowStateBatch) -> dict[str, np.ndarray]:
        extras = batch.extras
        return {
            "x_btl": extras["x_btl"],
            "x_max": extras["x_max"],
            "tau_min": extras["tau_min"],
            "cwnd": extras["cwnd"],
            "w_hi": extras["w_hi"],
            "w_lo": extras["w_lo"],
            "m_prt": extras["m_prt"],
            "m_dwn": extras["m_dwn"],
            "m_crs": extras["m_crs"],
            "t_pbw": extras["t_pbw"],
        }

    def congestion_window(self, state: FlowState) -> float:
        return state.extra["cwnd"]

    def trace_fields(self, state: FlowState) -> dict[str, float]:
        extra = state.extra
        return {
            "x_btl": extra["x_btl"],
            "x_max": extra["x_max"],
            "tau_min": extra["tau_min"],
            "cwnd": extra["cwnd"],
            "w_hi": extra["w_hi"],
            "w_lo": extra["w_lo"],
            "m_prt": extra["m_prt"],
            "m_dwn": extra["m_dwn"],
            "m_crs": extra["m_crs"],
            "t_pbw": extra["t_pbw"],
        }

"""Method-of-steps integrator for the network fluid model (Section 4.1.1).

The fluid model is a system of delay differential equations: every step the
simulator

1. reads the delayed sending rates of all flows to form per-link arrival
   rates (Eq. 1),
2. evaluates the queue-discipline loss model (Eq. 4 / Eq. 6),
3. computes per-flow path latency (Eq. 3), observed path loss (Eq. 7) and
   delivery rate (Eq. 17) from delayed link state,
4. lets every flow's CCA model advance its own state and sending rate,
5. integrates the link queues (Eq. 2), and
6. pushes the new samples into the ring-buffer histories.

The per-flow CCA dynamics live in :mod:`repro.core.reno`, ``cubic``,
``bbr1`` and ``bbr2``; the simulator is agnostic to them and supports
arbitrary mixes of CCAs, which is how the heterogeneous scenarios of the
paper's evaluation (e.g. BBRv1 vs. Reno) are expressed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..config import ScenarioConfig
from ..metrics.traces import FlowTrace, LinkTrace, Trace
from . import queues
from .flow import FlowInputs, FluidCCA
from .history import VectorHistory
from .network import Network
from .registry import create_model


@dataclass
class _LinkState:
    """Mutable per-link state of the integrator."""

    queue: float = 0.0
    loss: float = 0.0
    arrival: float = 0.0
    departure: float = 0.0


class FluidSimulator:
    """Simulates a :class:`~repro.config.ScenarioConfig` with the fluid model."""

    def __init__(
        self,
        config: ScenarioConfig,
        models: dict[int, FluidCCA] | None = None,
        record_interval_s: float = 1e-3,
    ) -> None:
        if record_interval_s < config.fluid.dt:
            raise ValueError("record interval must be at least one integration step")
        self.config = config
        self.network = Network.dumbbell(config)
        self.dt = config.fluid.dt
        self.record_interval_s = record_interval_s
        self.models: dict[int, FluidCCA] = {}
        for i, flow_cfg in enumerate(config.flows):
            if models and i in models:
                self.models[i] = models[i]
            else:
                self.models[i] = create_model(flow_cfg.cca, config.fluid)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #

    def run(self) -> Trace:
        """Integrate the scenario and return the recorded trace."""
        net = self.network
        cfg = self.config
        dt = self.dt
        num_flows = net.num_flows
        queued_links = net.queued_link_indices()

        # Per-flow constant bookkeeping.
        propagation_rtt = np.array(
            [net.propagation_rtt(i) for i in range(num_flows)], dtype=float
        )
        bottleneck_of = [net.bottleneck_of(i) for i in range(num_flows)]
        forward_delay = np.array(
            [net.forward_delay(i, bottleneck_of[i]) for i in range(num_flows)]
        )
        backward_delay = np.array(
            [net.backward_delay(i, bottleneck_of[i]) for i in range(num_flows)]
        )
        start_times = np.array([f.start_time_s for f in cfg.flows], dtype=float)

        max_delay = float(np.max(propagation_rtt)) + dt
        rate_history = VectorHistory(num_flows, dt, max_delay)
        latency_history = VectorHistory(num_flows, dt, max_delay, initial=propagation_rtt)
        num_links = net.num_links
        arrival_history = VectorHistory(num_links, dt, max_delay)
        queue_history = VectorHistory(num_links, dt, max_delay)
        loss_history = VectorHistory(num_links, dt, max_delay)

        # Per-flow CCA states.
        states = [
            self.models[i].initial_state(i, num_flows, net, cfg.fluid)
            for i in range(num_flows)
        ]
        link_states = {idx: _LinkState() for idx in queued_links}

        # Trace recording buffers.
        steps = int(round(cfg.duration_s / dt))
        record_every = max(1, int(round(self.record_interval_s / dt)))
        num_records = steps // record_every + 1
        rec_time = np.zeros(num_records)
        rec_rate = np.zeros((num_records, num_flows))
        rec_delivery = np.zeros((num_records, num_flows))
        rec_cwnd = np.zeros((num_records, num_flows))
        rec_inflight = np.zeros((num_records, num_flows))
        rec_rtt = np.zeros((num_records, num_flows))
        rec_extras: list[dict[str, np.ndarray]] = [
            {
                key: np.zeros(num_records)
                for key in self.models[i].trace_fields(states[i])
            }
            for i in range(num_flows)
        ]
        rec_queue = {idx: np.zeros(num_records) for idx in queued_links}
        rec_loss = {idx: np.zeros(num_records) for idx in queued_links}
        rec_arrival = {idx: np.zeros(num_records) for idx in queued_links}
        rec_departure = {idx: np.zeros(num_records) for idx in queued_links}
        record_index = 0

        users = {idx: net.users(idx) for idx in queued_links}
        user_forward_delays = {
            idx: np.array([net.forward_delay(i, idx) for i in users[idx]])
            for idx in queued_links
        }

        queue_lengths = {idx: 0.0 for idx in queued_links}
        current_latency = propagation_rtt.copy()
        delivery_rates = np.zeros(num_flows)

        for step in range(steps + 1):
            t = step * dt

            # 1. Link arrival rates from delayed sending rates (Eq. 1).
            for idx in queued_links:
                link = net.links[idx]
                flow_ids = users[idx]
                delayed = np.array(
                    [
                        rate_history.at_delay(i, d)
                        for i, d in zip(flow_ids, user_forward_delays[idx])
                    ]
                )
                arrival = float(np.sum(delayed))
                loss = queues.loss_probability(
                    link.discipline,
                    arrival,
                    link.capacity_pps,
                    queue_lengths[idx],
                    link.buffer_pkts,
                    sharpness=cfg.fluid.sigmoid_sharpness,
                    exponent=cfg.fluid.droptail_exponent,
                )
                departure = link.capacity_pps if queue_lengths[idx] > 0 else min(
                    (1.0 - loss) * arrival, link.capacity_pps
                )
                link_states[idx].arrival = arrival
                link_states[idx].loss = loss
                link_states[idx].departure = departure

            # 2. Per-flow observations.
            for i in range(num_flows):
                current_latency[i] = net.path_latency(i, queue_lengths)
            for i in range(num_flows):
                btl = bottleneck_of[i]
                link = net.links[btl]
                d_b = backward_delay[i]
                # Delivery rate of Eq. (17): the flow's delayed sending rate
                # scaled by its share of the capacity if a queue exists.  The
                # numerator is read back one extra step so that it samples the
                # same generation time as the rates inside the delayed arrival
                # rate; a flow's delivery can never exceed the bottleneck
                # capacity.
                own_delayed = rate_history.at_delay(i, propagation_rtt[i] + dt)
                y_delayed = arrival_history.at_delay(btl, d_b)
                q_delayed = queue_history.at_delay(btl, d_b)
                saturated = q_delayed > 0 or y_delayed > link.capacity_pps
                if saturated and y_delayed > 0:
                    delivery_rates[i] = min(
                        own_delayed / y_delayed * link.capacity_pps,
                        link.capacity_pps,
                    )
                else:
                    delivery_rates[i] = min(own_delayed, link.capacity_pps)
                # Path loss (Eq. 7), observed one backward delay later.
                path_loss = loss_history.at_delay(btl, d_b)

                inputs = FlowInputs(
                    t=t,
                    dt=dt,
                    tau=current_latency[i],
                    tau_delayed=latency_history.at_delay(i, propagation_rtt[i]),
                    path_loss=path_loss,
                    delivery_rate=delivery_rates[i],
                    rate_delayed=own_delayed,
                    propagation_rtt=propagation_rtt[i],
                    active=t >= start_times[i],
                    literal_xmax=cfg.fluid.literal_xmax,
                )
                self.models[i].step(states[i], inputs)

            # 3. Record (before integrating queues so t=0 is captured).
            if step % record_every == 0 and record_index < num_records:
                rec_time[record_index] = t
                for i in range(num_flows):
                    rec_rate[record_index, i] = states[i].rate
                    rec_delivery[record_index, i] = delivery_rates[i]
                    rec_cwnd[record_index, i] = self.models[i].congestion_window(states[i])
                    rec_inflight[record_index, i] = states[i].inflight
                    rec_rtt[record_index, i] = current_latency[i]
                    for key, value in self.models[i].trace_fields(states[i]).items():
                        if key in rec_extras[i]:
                            rec_extras[i][key][record_index] = value
                for idx in queued_links:
                    rec_queue[idx][record_index] = queue_lengths[idx]
                    rec_loss[idx][record_index] = link_states[idx].loss
                    rec_arrival[idx][record_index] = link_states[idx].arrival
                    rec_departure[idx][record_index] = link_states[idx].departure
                record_index += 1

            # 4. Integrate the link queues (Eq. 2).
            for idx in queued_links:
                link = net.links[idx]
                queue_lengths[idx] = queues.step_queue(
                    queue_lengths[idx],
                    link_states[idx].arrival,
                    link.capacity_pps,
                    link_states[idx].loss,
                    link.buffer_pkts,
                    dt,
                )
                link_states[idx].queue = queue_lengths[idx]

            # 5. Push histories.
            rate_history.push(np.array([s.rate for s in states]))
            latency_history.push(current_latency)
            arrivals = np.zeros(num_links)
            qs = np.zeros(num_links)
            losses = np.zeros(num_links)
            for idx in queued_links:
                arrivals[idx] = link_states[idx].arrival
                qs[idx] = queue_lengths[idx]
                losses[idx] = link_states[idx].loss
            arrival_history.push(arrivals)
            queue_history.push(qs)
            loss_history.push(losses)

        return self._build_trace(
            rec_time[:record_index],
            rec_rate[:record_index],
            rec_delivery[:record_index],
            rec_cwnd[:record_index],
            rec_inflight[:record_index],
            rec_rtt[:record_index],
            [{k: v[:record_index] for k, v in extras.items()} for extras in rec_extras],
            {idx: rec_queue[idx][:record_index] for idx in queued_links},
            {idx: rec_loss[idx][:record_index] for idx in queued_links},
            {idx: rec_arrival[idx][:record_index] for idx in queued_links},
            {idx: rec_departure[idx][:record_index] for idx in queued_links},
        )

    # ------------------------------------------------------------------ #
    # Trace assembly
    # ------------------------------------------------------------------ #

    def _build_trace(
        self,
        time: np.ndarray,
        rate: np.ndarray,
        delivery: np.ndarray,
        cwnd: np.ndarray,
        inflight: np.ndarray,
        rtt: np.ndarray,
        extras: list[dict[str, np.ndarray]],
        queue: dict[int, np.ndarray],
        loss: dict[int, np.ndarray],
        arrival: dict[int, np.ndarray],
        departure: dict[int, np.ndarray],
    ) -> Trace:
        flows = [
            FlowTrace(
                cca=self.config.flows[i].cca,
                rate=rate[:, i],
                delivery_rate=delivery[:, i],
                cwnd=cwnd[:, i],
                inflight=inflight[:, i],
                rtt=rtt[:, i],
                extras=extras[i],
            )
            for i in range(self.network.num_flows)
        ]
        links = []
        for idx in sorted(queue):
            link = self.network.links[idx]
            buffer_pkts = link.buffer_pkts if math.isfinite(link.buffer_pkts) else math.inf
            links.append(
                LinkTrace(
                    name=link.name or f"link-{idx}",
                    capacity_pps=link.capacity_pps,
                    buffer_pkts=buffer_pkts,
                    queue=queue[idx],
                    loss_prob=loss[idx],
                    arrival_rate=arrival[idx],
                    departure_rate=departure[idx],
                )
            )
        return Trace(time=time, flows=flows, links=links, substrate="fluid")


def simulate(config: ScenarioConfig, record_interval_s: float = 1e-3) -> Trace:
    """Convenience wrapper: build a :class:`FluidSimulator` and run it."""
    return FluidSimulator(config, record_interval_s=record_interval_s).run()

"""Array-native method-of-steps integrator for the network fluid model
(Section 4.1.1).

The fluid model is a system of delay differential equations: every step the
simulator

1. reads the delayed sending rates of all flows to form per-link arrival
   rates (Eq. 1),
2. evaluates the queue-discipline loss model (Eq. 4 / Eq. 6),
3. computes per-flow path latency (Eq. 3), observed path loss (Eq. 7) and
   delivery rate (Eq. 17) from delayed link state,
4. lets every flow's CCA model advance its own state and sending rate,
5. integrates the link queues (Eq. 2), and
6. pushes the new samples into the ring-buffer histories.

Because every delay of a scenario is a *constant*, the default
(``vectorized=True``) pipeline hoists all delay arithmetic out of the loop:
delays become integer lag tables computed once, per-component ring-buffer
reads become one batched :meth:`~repro.core.history.VectorHistory.gather`
per signal per step, the flow→link incidence structure turns Eq. 1 into a
gather-plus-segment-sum and Eq. 3 into a matrix-vector product, and the
loss/queue updates (Eq. 4/6, Eq. 2) run as single numpy expressions over
every queued link at once.  Flows whose CCA model implements the batched
``step_all`` protocol (all four built-in models) advance as
structure-of-arrays groups; models without it — custom or user-supplied —
fall back to the per-flow scalar ``step``, so arbitrary heterogeneous mixes
keep working.

The original per-flow/per-link scalar loop is retained behind
``vectorized=False`` as the numerical reference: both paths execute the
same floating-point operations in the same order and produce identical
traces (asserted by the equivalence tests in
``tests/test_simulator_vectorized.py``).

Both pipelines execute arbitrary multi-bottleneck topologies
(:class:`~repro.config.TopologyConfig`; parking lots, multi-dumbbells): all
K queued links integrate their queue/loss state together, per-flow path
latency sums the per-link queueing delays (Eq. 3), and a flow crossing
several queued links observes the composed path loss ``1 - prod(1 - p_l)``
with per-link backward delays (Eq. 7 generalised).

Eq. 1 was derived for a single bottleneck, where a link's arrival rate is
the sum of the flows' delayed *sending* rates.  On a multi-hop path that
overestimates downstream load: traffic reaching link ``l`` has already
been thinned by every upstream drop.  Both pipelines therefore attenuate
per-link arrivals along the path — the contribution of flow ``i`` to link
``l`` is its delayed sending rate run through ``r <- min(r * (1 - p_m),
C_m)`` for every upstream queued link ``m`` in path order, i.e. multiplied
by the upstream survival product and capped by the smallest upstream
delivered capacity, with each ``p_m`` read at the lag the traffic actually
crossed ``m``.  The delivery rate (Eq. 17) is then taken at the flow's
*effective* bottleneck: the path link with the smallest survival-scaled
capacity ``C_l / prod_upstream(1 - p_m)`` (re-evaluated every step from
the delayed loss state), using the flow's attenuated contribution as the
numerator.  ``attenuate_arrivals=False`` restores the unattenuated Eq.-1
arrivals (the pre-attenuation pipeline, kept for regression and
benchmarking).  Flows crossing a single queued link take exactly the
legacy single-bottleneck code path, so a one-hop topology is bit-identical
with the dumbbell form, and loss-free multi-hop runs whose rates stay
below every upstream capacity are bit-identical with the unattenuated
model.

The per-flow CCA dynamics live in :mod:`repro.core.reno`, ``cubic``,
``bbr1`` and ``bbr2``; the simulator is agnostic to them and supports
arbitrary mixes of CCAs, which is how the heterogeneous scenarios of the
paper's evaluation (e.g. BBRv1 vs. Reno) are expressed.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..config import FlowArrival, ScenarioConfig
from ..metrics.traces import FlowTrace, LinkTrace, Trace
from ..obs import TELEMETRY
from . import queues
from .flow import FlowInputs, FlowInputsBatch, FluidCCA
from .history import VectorHistory
from .network import Network, Path
from .registry import create_model


@dataclass
class _LinkState:
    """Mutable per-link state of the scalar reference integrator."""

    queue: float = 0.0
    loss: float = 0.0
    arrival: float = 0.0
    departure: float = 0.0


class FluidSimulator:
    """Simulates a :class:`~repro.config.ScenarioConfig` with the fluid model."""

    def __init__(
        self,
        config: ScenarioConfig,
        models: dict[int, FluidCCA] | None = None,
        record_interval_s: float = 1e-3,
        vectorized: bool = True,
        network: Network | None = None,
        initial_states: list | None = None,
        attenuate_arrivals: bool = True,
        schedule_entries: Sequence[FlowArrival] | None = None,
    ) -> None:
        if record_interval_s < config.fluid.dt:
            raise ValueError("record interval must be at least one integration step")
        self.config = config
        # ``schedule_entries`` lets :func:`simulate_many` hand over the
        # concatenated per-scenario schedules of a merged batch; a plain run
        # materialises its own config's schedule (or ``None`` for the
        # legacy static population).
        if schedule_entries is not None:
            self._schedule_entries: tuple[FlowArrival, ...] | None = tuple(
                schedule_entries
            )
        else:
            self._schedule_entries = config.flow_schedule()
        if (
            self._schedule_entries is not None
            and len(self._schedule_entries) != len(config.flows)
        ):
            raise ValueError("schedule entries must match the flow count")
        self.network = network if network is not None else Network.from_scenario(config)
        self.dt = config.fluid.dt
        self.record_interval_s = record_interval_s
        self.vectorized = vectorized
        # Upstream loss/capacity attenuation of per-link arrivals (and the
        # matching effective-bottleneck Eq. 17).  Only multi-hop paths are
        # affected; ``False`` restores the unattenuated Eq.-1 arrivals of
        # the original pipeline (kept for regression and benchmarking).
        self.attenuate_arrivals = attenuate_arrivals
        # ``initial_states`` lets :func:`simulate_many` hand over states that
        # were built with each scenario's own flow indexing (e.g. the BBR
        # gain-cycle phase is ``flow_index % 6`` *within* its scenario).
        self._initial_states = initial_states
        self.models: dict[int, FluidCCA] = {}
        for i, flow_cfg in enumerate(config.flows):
            if models and i in models:
                self.models[i] = models[i]
            else:
                self.models[i] = create_model(flow_cfg.cca, config.fluid)
        #: Substrate counters of the last completed run (steps, flows,
        #: links, gathers) — the fluid half of the stored ``runtime``
        #: block.  Populated by both pipelines; empty before any run.
        self.runtime: dict[str, int] = {}

    def _flow_lifetimes(self):
        """Per-flow start/stop/size arrays and whether any flow can depart.

        Returns ``(start_times, stop_times, flow_sizes, churn)``.  Without a
        schedule — or with a schedule of long-lived flows only — ``churn``
        is False and the pipelines keep the legacy start-only masking
        (bit-identical with the pre-schedule integrator).
        """
        entries = self._schedule_entries
        if entries is None:
            start_times = np.array(
                [f.start_time_s for f in self.config.flows], dtype=float
            )
            return start_times, None, None, False
        start_times = np.array([e.start_time_s for e in entries], dtype=float)
        stop_times = np.array(
            [math.inf if e.stop_time_s is None else e.stop_time_s for e in entries],
            dtype=float,
        )
        flow_sizes = np.array(
            [math.inf if e.size_packets is None else e.size_packets for e in entries],
            dtype=float,
        )
        churn = bool(np.any(np.isfinite(stop_times)) or np.any(np.isfinite(flow_sizes)))
        return start_times, stop_times, flow_sizes, churn

    @staticmethod
    def _flow_end_list(
        churn: bool,
        num_flows: int,
        duration_s: float,
        completed,
        end_times,
        stop_times,
    ) -> list[float | None]:
        """Per-flow departure times for the trace (``None`` = never departed)."""
        if not churn:
            return [None] * num_flows
        ends: list[float | None] = []
        for i in range(num_flows):
            if completed[i]:
                ends.append(float(end_times[i]))
            elif stop_times[i] <= duration_s:
                ends.append(float(stop_times[i]))
            else:
                ends.append(None)
        return ends

    def _make_states(self) -> list:
        if self._initial_states is not None:
            return list(self._initial_states)
        net = self.network
        cfg = self.config
        return [
            self.models[i].initial_state(i, net.num_flows, net, cfg.fluid)
            for i in range(net.num_flows)
        ]

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #

    def run(self) -> Trace:
        """Integrate the scenario and return the recorded trace."""
        with TELEMETRY.span(
            "fluid.integrate",
            flows=self.network.num_flows,
            duration_s=self.config.duration_s,
            vectorized=self.vectorized,
        ):
            if self.vectorized:
                trace = self._run_vectorized()
            else:
                trace = self._run_scalar()
        if TELEMETRY.enabled and self.runtime:
            TELEMETRY.count("fluid.steps", self.runtime["steps"])
            TELEMETRY.count("fluid.gathers", self.runtime.get("gathers", 0))
        return trace

    # ------------------------------------------------------------------ #
    # Vectorized pipeline (default)
    # ------------------------------------------------------------------ #

    def _run_vectorized(self) -> Trace:
        net = self.network
        cfg = self.config
        dt = self.dt
        num_flows = net.num_flows
        queued_links = net.queued_link_indices()
        num_queued = len(queued_links)

        # ---------- constant per-flow / per-link tables ---------------- #
        propagation_rtt = np.array(
            [net.propagation_rtt(i) for i in range(num_flows)], dtype=float
        )
        bottleneck_of = [net.bottleneck_of(i) for i in range(num_flows)]
        backward_delay = np.array(
            [net.backward_delay(i, bottleneck_of[i]) for i in range(num_flows)]
        )
        start_times, stop_times, flow_sizes, churn = self._flow_lifetimes()
        max_start = float(np.max(start_times))
        if churn:
            # Active-flow masking state: cumulative delivered volume drives
            # finite-size completion; completed (or stopped) flows are
            # masked out of the CCA updates from the *next* step on, so
            # their rate pins to zero and they contribute no arrivals —
            # without ever re-allocating the incidence pipeline.
            delivered_vol = np.zeros(num_flows)
            completed = np.zeros(num_flows, dtype=bool)
            end_times = np.full(num_flows, math.nan)

        max_delay = float(np.max(propagation_rtt)) + dt
        rate_history = VectorHistory(num_flows, dt, max_delay)
        latency_history = VectorHistory(num_flows, dt, max_delay, initial=propagation_rtt)
        # One merged history for the queued-link state, laid out as
        # [arrival | queue | loss] so the per-flow observation block needs a
        # single gather per step.
        link_history = VectorHistory(max(3 * num_queued, 1), dt, max_delay)

        # Flow -> link incidence for Eq. 1: the delayed sending rates of all
        # (link, user) pairs are gathered at once and segment-summed.
        user_flows: list[int] = []
        user_delays: list[float] = []
        seg_bounds = [0]
        for idx in queued_links:
            for i in net.users(idx):
                user_flows.append(i)
                user_delays.append(net.forward_delay(i, idx))
            seg_bounds.append(len(user_flows))
        user_flows_arr = np.array(user_flows, dtype=np.intp)
        user_lags = rate_history.lag_steps(np.array(user_delays, dtype=float))
        segments = [slice(seg_bounds[k], seg_bounds[k + 1]) for k in range(num_queued)]

        # Per-flow bottleneck bookkeeping for Eqs. 7 and 17.
        pos_of_link = {idx: pos for pos, idx in enumerate(queued_links)}
        btl_pos = np.array([pos_of_link[b] for b in bottleneck_of], dtype=np.intp)
        btl_capacity = np.array(
            [net.links[b].capacity_pps for b in bottleneck_of], dtype=float
        )
        flow_index = np.arange(num_flows, dtype=np.intp)
        own_lags = rate_history.lag_steps(propagation_rtt + dt)
        rtt_lags = latency_history.lag_steps(propagation_rtt)
        back_lags = link_history.lag_steps(backward_delay)
        obs_cols = np.concatenate(
            [btl_pos, num_queued + btl_pos, 2 * num_queued + btl_pos]
        )
        obs_lags = np.concatenate([back_lags, back_lags, back_lags])

        # Multi-bottleneck paths: a flow crossing several queued links
        # observes the *composed* path loss 1 - prod_l (1 - p_l), each link's
        # loss delayed by its own backward delay (Eq. 7 generalised to K
        # links).  Flows with a single queued link keep the direct bottleneck
        # gather above — bit-identical with the legacy dumbbell pipeline.
        multi_flows: list[int] = []
        multi_cols: list[int] = []
        multi_delays: list[float] = []
        multi_bounds = [0]
        for i in range(num_flows):
            queued_on_path = [
                idx for idx in net.paths[i].link_indices if idx in pos_of_link
            ]
            if len(queued_on_path) < 2:
                continue
            multi_flows.append(i)
            for idx in queued_on_path:
                multi_cols.append(2 * num_queued + pos_of_link[idx])
                multi_delays.append(net.backward_delay(i, idx))
            multi_bounds.append(len(multi_cols))
        attenuating = self.attenuate_arrivals
        if multi_flows:
            multi_flows_arr = np.array(multi_flows, dtype=np.intp)
            multi_cols_arr = np.array(multi_cols, dtype=np.intp)
            multi_lags = link_history.lag_steps(np.array(multi_delays, dtype=float))
            multi_starts = np.array(multi_bounds[:-1], dtype=np.intp)
        if multi_flows and attenuating:
            # Dynamic effective bottleneck (Eq. 17 under attenuation): per
            # step, each multi-hop flow's reference link is the path link
            # with the smallest survival-scaled capacity C_l / S_l, where
            # S_l is the flow's survival product over links upstream of l
            # (ties pick the most upstream link).  The per-pair survive
            # factors are the same backward-delayed gathers the composed
            # path loss already uses; arrival/queue of the chosen link are
            # gathered at its own backward delay.  The per-pair arrays are
            # processed as a rectangular (num_multi, max_len) matrix —
            # segments shorter than max_len are padded with survive = 1 /
            # capacity = inf so they never win the argmin.
            num_multi = len(multi_flows)
            multi_links = [
                idx
                for i in multi_flows
                for idx in net.paths[i].link_indices
                if idx in pos_of_link
            ]
            multi_caps = np.array(
                [net.links[idx].capacity_pps for idx in multi_links], dtype=float
            )
            multi_arr_cols = multi_cols_arr - 2 * num_queued
            multi_q_cols = multi_cols_arr - num_queued
            seg_lens = np.diff(multi_bounds)
            max_len = int(seg_lens.max())
            ragged = bool(np.any(seg_lens != max_len))
            pad_idx = np.zeros((num_multi, max_len), dtype=np.intp)
            pad_invalid = np.ones((num_multi, max_len), dtype=bool)
            for row, (start, length) in enumerate(zip(multi_starts, seg_lens, strict=True)):
                pad_idx[row, :length] = np.arange(start, start + length)
                pad_invalid[row, :length] = False
            caps_pad = multi_caps[pad_idx]
            caps_pad[pad_invalid] = np.inf
            pad_valid = ~pad_invalid
            multi_rows = np.arange(num_multi)
            # Reusable per-step buffers (survive matrix, exclusive prefix
            # survival, attenuated contribution, effective capacity).
            surv_pad = np.ones((num_multi, max_len))
            surv_prefix = np.ones((num_multi, max_len))
            own_contrib = np.empty((num_multi, max_len))
            eff_capacity = np.empty((num_multi, max_len))

        # Upstream attenuation tables for Eq. 1: the contribution of flow i
        # to link l is its delayed sending rate run through
        # ``r <- min(r * (1 - p_m), C_m)`` over the queued links m upstream
        # of l in path order — the survival product capped by the smallest
        # upstream delivered capacity.  Each p_m is read at the lag the
        # traffic actually crossed m, ``d^f_{i,l} - d^f_{i,m}``.  Pairs
        # whose link is the flow's first queued link have no upstream terms
        # and keep the exact legacy arithmetic (one-hop scenarios stay
        # bit-identical).  Pairs are sorted by upstream depth (deepest
        # first) so each depth level is a leading slice, and all depth
        # levels share one gather per step.
        att_positions = np.empty(0, dtype=np.intp)
        att_levels: list[tuple[slice, slice, np.ndarray]] = []
        if attenuating:
            att_list: list[tuple[int, int, int, list[int]]] = []
            pos = 0
            for idx in queued_links:
                for i in net.users(idx):
                    ups = net.upstream_queued_links(i, idx)
                    if ups:
                        att_list.append((pos, i, idx, ups))
                    pos += 1
            att_list.sort(key=lambda entry: -len(entry[3]))
            if att_list:
                att_positions = np.array([p for p, _, _, _ in att_list], dtype=np.intp)
                max_depth = len(att_list[0][3])
                att_cols: list[int] = []
                att_delays: list[float] = []
                for d in range(max_depth):
                    count = sum(1 for _, _, _, ups in att_list if len(ups) > d)
                    caps = np.empty(count)
                    for local, (_, i, idx, ups) in enumerate(att_list[:count]):
                        m = ups[d]
                        att_cols.append(2 * num_queued + pos_of_link[m])
                        att_delays.append(
                            net.forward_delay(i, idx) - net.forward_delay(i, m)
                        )
                        caps[local] = net.links[m].capacity_pps
                    offset = len(att_cols) - count
                    att_levels.append(
                        (slice(0, count), slice(offset, offset + count), caps)
                    )
                att_cols_arr = np.array(att_cols, dtype=np.intp)
                att_lags = link_history.lag_steps(np.array(att_delays, dtype=float))

        # All link-state reads of a step sample the same (immutable) ring
        # buffer, so the attenuated pipeline fuses them into one gather:
        # [attenuation survivals | per-flow bottleneck obs | multi-pair
        # loss | multi-pair arrival | multi-pair queue].
        fused_cols = None
        if attenuating and multi_flows:
            pieces = (
                (att_cols_arr, att_lags),
                (obs_cols, obs_lags),
                (multi_cols_arr, multi_lags),
                (multi_arr_cols, multi_lags),
                (multi_q_cols, multi_lags),
            )
            fused_cols = np.concatenate([cols for cols, _ in pieces])
            fused_lags = np.concatenate([lags for _, lags in pieces])
            bounds = np.cumsum([0] + [len(cols) for cols, _ in pieces])
            (s_att, s_obs, s_loss, s_arr, s_queue) = (
                slice(bounds[k], bounds[k + 1]) for k in range(5)
            )

        # Path latency (Eq. 3) = constant propagation part + incidence
        # matrix times the per-link queueing delays.
        latency_const = np.empty(num_flows)
        queue_incidence = np.zeros((num_flows, num_queued))
        for i in range(num_flows):
            path = net.paths[i]
            acc = path.return_delay_s
            for idx in path.link_indices:
                acc += net.links[idx].delay_s
            latency_const[i] = acc
            for idx in path.link_indices:
                if idx in pos_of_link:
                    queue_incidence[i, pos_of_link[idx]] = 1.0

        # Queued-link parameter arrays for Eq. 2 and Eq. 4/6.
        link_capacity = np.array(
            [net.links[idx].capacity_pps for idx in queued_links], dtype=float
        )
        link_buffer = np.array(
            [net.links[idx].buffer_pkts for idx in queued_links], dtype=float
        )
        disciplines = [net.links[idx].discipline for idx in queued_links]
        all_droptail = all(d == "droptail" for d in disciplines)
        all_red = all(d == "red" for d in disciplines)
        droptail_mask = np.array([d == "droptail" for d in disciplines])
        sharpness = cfg.fluid.sigmoid_sharpness
        exponent = cfg.fluid.droptail_exponent
        literal_xmax = cfg.fluid.literal_xmax

        # ---------- CCA states: batched groups + scalar fallback -------- #
        states = self._make_states()
        group_indices: dict[object, list[int]] = {}
        for i in range(num_flows):
            key = self.models[i].batch_key()
            if key is None:
                group_indices.setdefault(("scalar", i), [i])
            else:
                group_indices.setdefault(key, []).append(i)
        batch_groups = []  # (model, selector, batch, reusable FlowInputsBatch)
        scalar_flows: list[int] = []
        for key, flow_ids in group_indices.items():
            if isinstance(key, tuple) and key and key[0] == "scalar":
                scalar_flows.extend(flow_ids)
                continue
            model = self.models[flow_ids[0]]
            batch = model.make_batch([states[i] for i in flow_ids])
            if len(flow_ids) == num_flows:
                idx = None  # whole-population group: pass full arrays through
            elif flow_ids == list(range(flow_ids[0], flow_ids[-1] + 1)):
                # Contiguous block (typical for the paper's 5+5 mixes):
                # views instead of fancy-index copies in the hot loop.
                idx = slice(flow_ids[0], flow_ids[-1] + 1)
            else:
                idx = np.array(flow_ids, dtype=np.intp)
            group_rtt = propagation_rtt if idx is None else propagation_rtt[idx]
            inputs = FlowInputsBatch(
                t=0.0,
                dt=dt,
                tau=latency_const,
                tau_delayed=latency_const,
                path_loss=latency_const,
                delivery_rate=latency_const,
                rate_delayed=latency_const,
                propagation_rtt=group_rtt,
                active=None,
                literal_xmax=literal_xmax,
            )
            batch_groups.append((model, idx, batch, inputs))
        scalar_flows.sort()

        # ---------- trace recording buffers ----------------------------- #
        steps = int(round(cfg.duration_s / dt))
        record_every = max(1, int(round(self.record_interval_s / dt)))
        num_records = steps // record_every + 1
        rec_time = np.zeros(num_records)
        rec_rate = np.zeros((num_records, num_flows))
        rec_delivery = np.zeros((num_records, num_flows))
        rec_cwnd = np.zeros((num_records, num_flows))
        rec_inflight = np.zeros((num_records, num_flows))
        rec_rtt = np.zeros((num_records, num_flows))
        rec_link = np.zeros((num_records, 4 * num_queued))  # queue|loss|arrival|departure
        group_extras = [
            {
                key: np.zeros((num_records, batch.size))
                for key in model.trace_fields_all(batch)
            }
            for model, idx, batch, _ in batch_groups
        ]
        scalar_extras = {
            i: {key: np.zeros(num_records) for key in self.models[i].trace_fields(states[i])}
            for i in scalar_flows
        }
        record_index = 0

        # ---------- mutable per-step arrays ----------------------------- #
        queue_arr = np.zeros(num_queued)
        arrival = np.zeros(num_queued)
        rates_all = np.zeros(num_flows)
        delivery_rates = np.zeros(num_flows)

        for step in range(steps + 1):
            t = step * dt
            if fused_cols is not None:
                fused = link_history.gather(fused_cols, fused_lags)

            # 1. Link arrival rates from delayed sending rates (Eq. 1),
            # attenuated by upstream loss and capacity along each path.
            delayed_rates = rate_history.gather(user_flows_arr, user_lags)
            if att_positions.size:
                att_surv = 1.0 - fused[s_att]
                contrib = delayed_rates[att_positions]
                for rows, seg, caps in att_levels:
                    np.minimum(contrib[rows] * att_surv[seg], caps, out=contrib[rows])
                delayed_rates[att_positions] = contrib
            for k in range(num_queued):
                arrival[k] = delayed_rates[segments[k]].sum()
            if all_droptail:
                loss = queues.droptail_loss_vec(
                    arrival, link_capacity, queue_arr, link_buffer, sharpness, exponent
                )
            elif all_red:
                loss = queues.red_loss_vec(queue_arr, link_buffer)
            else:
                loss = np.where(
                    droptail_mask,
                    queues.droptail_loss_vec(
                        arrival, link_capacity, queue_arr, link_buffer, sharpness, exponent
                    ),
                    queues.red_loss_vec(queue_arr, link_buffer),
                )
            departure = np.where(
                queue_arr > 0,
                link_capacity,
                np.minimum((1.0 - loss) * arrival, link_capacity),
            )

            # 2. Per-flow observations: path latency (Eq. 3), observed loss
            # (Eq. 7) and delivery rate (Eq. 17), all flows at once.
            queueing_delay = queue_arr / link_capacity
            latency = latency_const + queue_incidence @ queueing_delay
            own_delayed = rate_history.gather(flow_index, own_lags)
            tau_delayed = latency_history.gather(flow_index, rtt_lags)
            if fused_cols is not None:
                obs = fused[s_obs]
            else:
                obs = link_history.gather(obs_cols, obs_lags)
            y_delayed = obs[:num_flows]
            q_delayed = obs[num_flows : 2 * num_flows]
            p_delayed = obs[2 * num_flows :]
            if multi_flows:
                if fused_cols is not None:
                    survive = 1.0 - fused[s_loss]
                else:
                    survive = 1.0 - link_history.gather(multi_cols_arr, multi_lags)
                p_delayed[multi_flows_arr] = 1.0 - np.multiply.reduceat(
                    survive, multi_starts
                )
            has_arrival = y_delayed > 0
            saturated = (q_delayed > 0) | (y_delayed > btl_capacity)
            y_safe = np.where(has_arrival, y_delayed, 1.0)
            delivery_rates = np.where(
                saturated & has_arrival,
                np.minimum(own_delayed / y_safe * btl_capacity, btl_capacity),
                np.minimum(own_delayed, btl_capacity),
            )
            if multi_flows and attenuating:
                # Effective bottleneck for multi-hop flows: exclusive prefix
                # survival S_l and the flow's attenuated contribution R_l
                # (min(r * s, C) recursion) along each segment, then the
                # argmin of C_l / S_l picks the reference link (first on
                # ties = most upstream).  All segments are processed as the
                # padded (num_multi, max_len) matrix built above.
                if ragged:
                    # Padding entries keep their initial survive = 1.0.
                    np.place(surv_pad, pad_valid, survive)
                else:
                    surv_pad = survive.reshape(num_multi, max_len)
                np.cumprod(surv_pad[:, :-1], axis=1, out=surv_prefix[:, 1:])
                own_contrib[:, 0] = own_delayed[multi_flows_arr]
                for d in range(1, max_len):
                    np.minimum(
                        own_contrib[:, d - 1] * surv_pad[:, d - 1],
                        caps_pad[:, d - 1],
                        out=own_contrib[:, d],
                    )
                # An upstream link dropping everything (RED at a full
                # buffer) zeroes the survival prefix: no traffic reaches
                # the links behind it, so their effective capacity is
                # infinite rather than a division by zero.
                unreachable = surv_prefix == 0.0
                if unreachable.any():
                    np.divide(
                        caps_pad,
                        np.where(unreachable, 1.0, surv_prefix),
                        out=eff_capacity,
                    )
                    eff_capacity[unreachable] = np.inf
                else:
                    np.divide(caps_pad, surv_prefix, out=eff_capacity)
                choice = np.argmin(eff_capacity, axis=1)
                chosen = pad_idx[multi_rows, choice]
                cap_dyn = multi_caps[chosen]
                y_dyn = fused[s_arr][chosen]
                q_dyn = fused[s_queue][chosen]
                own_dyn = own_contrib[multi_rows, choice]
                has_dyn = y_dyn > 0
                sat_dyn = (q_dyn > 0) | (y_dyn > cap_dyn)
                y_safe_dyn = np.where(has_dyn, y_dyn, 1.0)
                delivery_rates[multi_flows_arr] = np.where(
                    sat_dyn & has_dyn,
                    np.minimum(own_dyn / y_safe_dyn * cap_dyn, cap_dyn),
                    np.minimum(own_dyn, cap_dyn),
                )

            # 3. CCA updates: batched groups, then scalar-fallback flows.
            if churn:
                active_all = (start_times <= t) & (t < stop_times) & ~completed
            else:
                active_all = None if t >= max_start else start_times <= t
            for model, idx, batch, inputs in batch_groups:
                inputs.t = t
                if idx is None:
                    inputs.tau = latency
                    inputs.tau_delayed = tau_delayed
                    inputs.path_loss = p_delayed
                    inputs.delivery_rate = delivery_rates
                    inputs.rate_delayed = own_delayed
                    inputs.active = active_all
                    model.step_all(batch, inputs)
                    rates_all = batch.rate
                else:
                    inputs.tau = latency[idx]
                    inputs.tau_delayed = tau_delayed[idx]
                    inputs.path_loss = p_delayed[idx]
                    inputs.delivery_rate = delivery_rates[idx]
                    inputs.rate_delayed = own_delayed[idx]
                    inputs.active = None if active_all is None else active_all[idx]
                    model.step_all(batch, inputs)
                    rates_all[idx] = batch.rate
            for i in scalar_flows:
                inputs_i = FlowInputs(
                    t=t,
                    dt=dt,
                    tau=float(latency[i]),
                    tau_delayed=float(tau_delayed[i]),
                    path_loss=float(p_delayed[i]),
                    delivery_rate=float(delivery_rates[i]),
                    rate_delayed=float(own_delayed[i]),
                    propagation_rtt=float(propagation_rtt[i]),
                    active=bool(active_all[i]) if churn else t >= start_times[i],
                    literal_xmax=literal_xmax,
                )
                self.models[i].step(states[i], inputs_i)
                rates_all[i] = states[i].rate

            if churn:
                # Finite-size completion: only active flows accumulate
                # delivered volume, and a crossing takes effect (flow
                # masked inactive) from the next step.
                delivered_vol += np.where(active_all, delivery_rates, 0.0) * dt
                newly_done = (delivered_vol >= flow_sizes) & ~completed
                if newly_done.any():
                    completed |= newly_done
                    end_times[newly_done] = t

            # 4. Record (before integrating queues so t=0 is captured).
            if step % record_every == 0 and record_index < num_records:
                rec_time[record_index] = t
                rec_rate[record_index] = rates_all
                rec_delivery[record_index] = delivery_rates
                rec_rtt[record_index] = latency
                rec_link[record_index, :num_queued] = queue_arr
                rec_link[record_index, num_queued : 2 * num_queued] = loss
                rec_link[record_index, 2 * num_queued : 3 * num_queued] = arrival
                rec_link[record_index, 3 * num_queued :] = departure
                for group_pos, (model, idx, batch, _) in enumerate(batch_groups):
                    cols = slice(None) if idx is None else idx
                    rec_inflight[record_index, cols] = batch.inflight
                    rec_cwnd[record_index, cols] = model.congestion_window_all(batch)
                    extras_rec = group_extras[group_pos]
                    for key, values in model.trace_fields_all(batch).items():
                        extras_rec[key][record_index] = values
                for i in scalar_flows:
                    rec_inflight[record_index, i] = states[i].inflight
                    rec_cwnd[record_index, i] = self.models[i].congestion_window(states[i])
                    extras_i = scalar_extras[i]
                    for key, value in self.models[i].trace_fields(states[i]).items():
                        if key in extras_i:
                            extras_i[key][record_index] = value
                record_index += 1

            # 5. Integrate the link queues (Eq. 2).
            queue_arr = queues.step_queue_vec(
                queue_arr, arrival, link_capacity, loss, link_buffer, dt
            )

            # 6. Push histories (queue post-integration, like the scalar path).
            rate_history.advance()[:] = rates_all
            latency_history.advance()[:] = latency
            link_row = link_history.advance()
            link_row[:num_queued] = arrival
            link_row[num_queued : 2 * num_queued] = queue_arr
            link_row[2 * num_queued :] = loss

        # ---------- assemble the per-flow extras dictionaries ----------- #
        extras_per_flow: list[dict[str, np.ndarray]] = [dict() for _ in range(num_flows)]
        for group_pos, (model, idx, batch, _) in enumerate(batch_groups):
            if idx is None:
                flow_ids = range(num_flows)
            elif isinstance(idx, slice):
                flow_ids = range(idx.start, idx.stop)
            else:
                flow_ids = idx
            for col, i in enumerate(flow_ids):
                extras_per_flow[i] = {
                    key: values[:record_index, col]
                    for key, values in group_extras[group_pos].items()
                }
        for i in scalar_flows:
            extras_per_flow[i] = {
                key: values[:record_index] for key, values in scalar_extras[i].items()
            }

        self.runtime = {
            "steps": steps + 1,
            "flows": num_flows,
            "links": num_queued,
            "gathers": rate_history.gathers
            + latency_history.gathers
            + link_history.gathers,
        }
        flow_ends = self._flow_end_list(
            churn,
            num_flows,
            cfg.duration_s,
            completed if churn else None,
            end_times if churn else None,
            stop_times if churn else None,
        )
        return self._build_trace(
            rec_time[:record_index],
            rec_rate[:record_index],
            rec_delivery[:record_index],
            rec_cwnd[:record_index],
            rec_inflight[:record_index],
            rec_rtt[:record_index],
            extras_per_flow,
            {
                idx: rec_link[:record_index, pos]
                for pos, idx in enumerate(queued_links)
            },
            {
                idx: rec_link[:record_index, num_queued + pos]
                for pos, idx in enumerate(queued_links)
            },
            {
                idx: rec_link[:record_index, 2 * num_queued + pos]
                for pos, idx in enumerate(queued_links)
            },
            {
                idx: rec_link[:record_index, 3 * num_queued + pos]
                for pos, idx in enumerate(queued_links)
            },
            flow_starts=start_times,
            flow_ends=flow_ends,
        )

    # ------------------------------------------------------------------ #
    # Scalar reference pipeline (vectorized=False)
    # ------------------------------------------------------------------ #

    def _run_scalar(self) -> Trace:
        net = self.network
        cfg = self.config
        dt = self.dt
        num_flows = net.num_flows
        queued_links = net.queued_link_indices()

        # Per-flow constant bookkeeping.
        propagation_rtt = np.array(
            [net.propagation_rtt(i) for i in range(num_flows)], dtype=float
        )
        bottleneck_of = [net.bottleneck_of(i) for i in range(num_flows)]
        backward_delay = np.array(
            [net.backward_delay(i, bottleneck_of[i]) for i in range(num_flows)]
        )
        start_times, stop_times, flow_sizes, churn = self._flow_lifetimes()
        if churn:
            delivered_vol = np.zeros(num_flows)
            completed = np.zeros(num_flows, dtype=bool)
            end_times = np.full(num_flows, math.nan)

        max_delay = float(np.max(propagation_rtt)) + dt
        rate_history = VectorHistory(num_flows, dt, max_delay)
        latency_history = VectorHistory(num_flows, dt, max_delay, initial=propagation_rtt)
        num_links = net.num_links
        arrival_history = VectorHistory(num_links, dt, max_delay)
        queue_history = VectorHistory(num_links, dt, max_delay)
        loss_history = VectorHistory(num_links, dt, max_delay)

        # Per-flow CCA states.
        states = self._make_states()
        link_states = {idx: _LinkState() for idx in queued_links}

        # Trace recording buffers.
        steps = int(round(cfg.duration_s / dt))
        record_every = max(1, int(round(self.record_interval_s / dt)))
        num_records = steps // record_every + 1
        rec_time = np.zeros(num_records)
        rec_rate = np.zeros((num_records, num_flows))
        rec_delivery = np.zeros((num_records, num_flows))
        rec_cwnd = np.zeros((num_records, num_flows))
        rec_inflight = np.zeros((num_records, num_flows))
        rec_rtt = np.zeros((num_records, num_flows))
        rec_extras: list[dict[str, np.ndarray]] = [
            {
                key: np.zeros(num_records)
                for key in self.models[i].trace_fields(states[i])
            }
            for i in range(num_flows)
        ]
        rec_queue = {idx: np.zeros(num_records) for idx in queued_links}
        rec_loss = {idx: np.zeros(num_records) for idx in queued_links}
        rec_arrival = {idx: np.zeros(num_records) for idx in queued_links}
        rec_departure = {idx: np.zeros(num_records) for idx in queued_links}
        record_index = 0

        users = {idx: net.users(idx) for idx in queued_links}
        user_forward_delays = {
            idx: np.array([net.forward_delay(i, idx) for i in users[idx]])
            for idx in queued_links
        }
        # Per-flow queued links on the path (for composed multi-bottleneck
        # loss) and their backward delays.  Single-queued-link flows keep the
        # direct bottleneck lookup below, bit-identical with the legacy path.
        queued_on_path = {
            i: [idx for idx in net.paths[i].link_indices if net.links[idx].has_queue]
            for i in range(num_flows)
        }
        path_back_delays = {
            i: [net.backward_delay(i, idx) for idx in queued_on_path[i]]
            for i in range(num_flows)
        }
        path_capacities = {
            i: [net.links[idx].capacity_pps for idx in queued_on_path[i]]
            for i in range(num_flows)
        }
        # Upstream attenuation terms of Eq. 1 per (link, user) pair: the
        # queued links m upstream of the link on the user's path, each with
        # the lag the traffic crossed m (``d^f_{i,l} - d^f_{i,m}``) and its
        # capacity — the survival/cap recursion mirrors the vectorized
        # pipeline operation for operation.  First-queued-link pairs carry
        # no terms, keeping the legacy arithmetic bit-identical.
        attenuating = self.attenuate_arrivals
        upstream_terms = {
            idx: [
                [
                    (
                        m,
                        net.forward_delay(i, idx) - net.forward_delay(i, m),
                        net.links[m].capacity_pps,
                    )
                    for m in net.upstream_queued_links(i, idx)
                ]
                for i in users[idx]
            ]
            for idx in queued_links
        }

        queue_lengths = {idx: 0.0 for idx in queued_links}
        current_latency = propagation_rtt.copy()
        delivery_rates = np.zeros(num_flows)

        for step in range(steps + 1):
            t = step * dt

            # 1. Link arrival rates from delayed sending rates (Eq. 1).
            for idx in queued_links:
                link = net.links[idx]
                flow_ids = users[idx]
                delayed = np.array(
                    [
                        rate_history.at_delay(i, d)
                        for i, d in zip(flow_ids, user_forward_delays[idx], strict=True)
                    ]
                )
                if attenuating:
                    for k, terms in enumerate(upstream_terms[idx]):
                        if not terms:
                            continue
                        r = delayed[k]
                        for m, crossing_delay, cap in terms:
                            s = 1.0 - loss_history.at_delay(m, crossing_delay)
                            r = min(r * s, cap)
                        delayed[k] = r
                arrival = float(np.sum(delayed))
                loss = queues.loss_probability(
                    link.discipline,
                    arrival,
                    link.capacity_pps,
                    queue_lengths[idx],
                    link.buffer_pkts,
                    sharpness=cfg.fluid.sigmoid_sharpness,
                    exponent=cfg.fluid.droptail_exponent,
                )
                departure = link.capacity_pps if queue_lengths[idx] > 0 else min(
                    (1.0 - loss) * arrival, link.capacity_pps
                )
                link_states[idx].arrival = arrival
                link_states[idx].loss = loss
                link_states[idx].departure = departure

            # 2. Per-flow observations.
            for i in range(num_flows):
                current_latency[i] = net.path_latency(i, queue_lengths)
            for i in range(num_flows):
                btl = bottleneck_of[i]
                link = net.links[btl]
                d_b = backward_delay[i]
                # Delivery rate of Eq. (17): the flow's delayed sending rate
                # scaled by its share of the capacity if a queue exists.  The
                # numerator is read back one extra step so that it samples the
                # same generation time as the rates inside the delayed arrival
                # rate; a flow's delivery can never exceed the bottleneck
                # capacity.
                own_delayed = rate_history.at_delay(i, propagation_rtt[i] + dt)
                links_on_path = queued_on_path[i]
                if len(links_on_path) == 1 or not attenuating:
                    y_delayed = arrival_history.at_delay(btl, d_b)
                    q_delayed = queue_history.at_delay(btl, d_b)
                    saturated = q_delayed > 0 or y_delayed > link.capacity_pps
                    if saturated and y_delayed > 0:
                        delivery_rates[i] = min(
                            own_delayed / y_delayed * link.capacity_pps,
                            link.capacity_pps,
                        )
                    else:
                        delivery_rates[i] = min(own_delayed, link.capacity_pps)
                else:
                    # Effective bottleneck under attenuation: walk the path
                    # accumulating the exclusive prefix survival S and the
                    # flow's attenuated contribution (min(r * s, C)
                    # recursion); the link with the smallest survival-scaled
                    # capacity C / S is the reference (first on ties), and
                    # Eq. 17 uses the flow's contribution there as the
                    # numerator.  Mirrors the vectorized pipeline exactly.
                    surv_prefix = 1.0
                    contrib = own_delayed
                    best_eff = math.inf
                    best_link = links_on_path[0]
                    best_back = path_back_delays[i][0]
                    best_cap = path_capacities[i][0]
                    best_contrib = contrib
                    for idx, back, cap in zip(
                        links_on_path,
                        path_back_delays[i],
                        path_capacities[i],
                        strict=True,
                    ):
                        # Zero prefix survival = the link is unreachable
                        # (everything dropped upstream): effective capacity
                        # is infinite, mirroring the vectorized pipeline.
                        eff = cap / surv_prefix if surv_prefix > 0.0 else math.inf
                        if eff < best_eff:
                            best_eff = eff
                            best_link, best_back = idx, back
                            best_cap, best_contrib = cap, contrib
                        s = 1.0 - loss_history.at_delay(idx, back)
                        surv_prefix *= s
                        contrib = min(contrib * s, cap)
                    y_delayed = arrival_history.at_delay(best_link, best_back)
                    q_delayed = queue_history.at_delay(best_link, best_back)
                    saturated = q_delayed > 0 or y_delayed > best_cap
                    if saturated and y_delayed > 0:
                        delivery_rates[i] = min(
                            best_contrib / y_delayed * best_cap, best_cap
                        )
                    else:
                        delivery_rates[i] = min(best_contrib, best_cap)
                # Path loss (Eq. 7), observed one backward delay later.  On a
                # multi-bottleneck path the per-link losses compose as
                # 1 - prod_l (1 - p_l), each with its own backward delay.
                if len(links_on_path) == 1:
                    path_loss = loss_history.at_delay(btl, d_b)
                else:
                    survive = 1.0
                    for idx, back in zip(links_on_path, path_back_delays[i], strict=True):
                        survive *= 1.0 - loss_history.at_delay(idx, back)
                    path_loss = 1.0 - survive

                if churn:
                    active_i = bool(
                        start_times[i] <= t
                        and t < stop_times[i]
                        and not completed[i]
                    )
                else:
                    active_i = t >= start_times[i]
                inputs = FlowInputs(
                    t=t,
                    dt=dt,
                    tau=current_latency[i],
                    tau_delayed=latency_history.at_delay(i, propagation_rtt[i]),
                    path_loss=path_loss,
                    delivery_rate=delivery_rates[i],
                    rate_delayed=own_delayed,
                    propagation_rtt=propagation_rtt[i],
                    active=active_i,
                    literal_xmax=cfg.fluid.literal_xmax,
                )
                self.models[i].step(states[i], inputs)
                if churn and active_i:
                    # Same volume/completion arithmetic (and operation
                    # order) as the vectorized pipeline, for bit-identity.
                    delivered_vol[i] += delivery_rates[i] * dt
                    if not completed[i] and delivered_vol[i] >= flow_sizes[i]:
                        completed[i] = True
                        end_times[i] = t

            # 3. Record (before integrating queues so t=0 is captured).
            if step % record_every == 0 and record_index < num_records:
                rec_time[record_index] = t
                for i in range(num_flows):
                    rec_rate[record_index, i] = states[i].rate
                    rec_delivery[record_index, i] = delivery_rates[i]
                    rec_cwnd[record_index, i] = self.models[i].congestion_window(states[i])
                    rec_inflight[record_index, i] = states[i].inflight
                    rec_rtt[record_index, i] = current_latency[i]
                    for key, value in self.models[i].trace_fields(states[i]).items():
                        if key in rec_extras[i]:
                            rec_extras[i][key][record_index] = value
                for idx in queued_links:
                    rec_queue[idx][record_index] = queue_lengths[idx]
                    rec_loss[idx][record_index] = link_states[idx].loss
                    rec_arrival[idx][record_index] = link_states[idx].arrival
                    rec_departure[idx][record_index] = link_states[idx].departure
                record_index += 1

            # 4. Integrate the link queues (Eq. 2).
            for idx in queued_links:
                link = net.links[idx]
                queue_lengths[idx] = queues.step_queue(
                    queue_lengths[idx],
                    link_states[idx].arrival,
                    link.capacity_pps,
                    link_states[idx].loss,
                    link.buffer_pkts,
                    dt,
                )
                link_states[idx].queue = queue_lengths[idx]

            # 5. Push histories.
            rate_history.push(np.array([s.rate for s in states]))
            latency_history.push(current_latency)
            arrivals = np.zeros(num_links)
            qs = np.zeros(num_links)
            losses = np.zeros(num_links)
            for idx in queued_links:
                arrivals[idx] = link_states[idx].arrival
                qs[idx] = queue_lengths[idx]
                losses[idx] = link_states[idx].loss
            arrival_history.push(arrivals)
            queue_history.push(qs)
            loss_history.push(losses)

        self.runtime = {
            "steps": steps + 1,
            "flows": num_flows,
            "links": len(queued_links),
        }
        flow_ends = self._flow_end_list(
            churn,
            num_flows,
            cfg.duration_s,
            completed if churn else None,
            end_times if churn else None,
            stop_times if churn else None,
        )
        return self._build_trace(
            rec_time[:record_index],
            rec_rate[:record_index],
            rec_delivery[:record_index],
            rec_cwnd[:record_index],
            rec_inflight[:record_index],
            rec_rtt[:record_index],
            [{k: v[:record_index] for k, v in extras.items()} for extras in rec_extras],
            {idx: rec_queue[idx][:record_index] for idx in queued_links},
            {idx: rec_loss[idx][:record_index] for idx in queued_links},
            {idx: rec_arrival[idx][:record_index] for idx in queued_links},
            {idx: rec_departure[idx][:record_index] for idx in queued_links},
            flow_starts=start_times,
            flow_ends=flow_ends,
        )

    # ------------------------------------------------------------------ #
    # Trace assembly
    # ------------------------------------------------------------------ #

    def _build_trace(
        self,
        time: np.ndarray,
        rate: np.ndarray,
        delivery: np.ndarray,
        cwnd: np.ndarray,
        inflight: np.ndarray,
        rtt: np.ndarray,
        extras: list[dict[str, np.ndarray]],
        queue: dict[int, np.ndarray],
        loss: dict[int, np.ndarray],
        arrival: dict[int, np.ndarray],
        departure: dict[int, np.ndarray],
        flow_starts: np.ndarray | None = None,
        flow_ends: list[float | None] | None = None,
    ) -> Trace:
        flows = [
            FlowTrace(
                cca=self.config.flows[i].cca,
                rate=rate[:, i],
                delivery_rate=delivery[:, i],
                cwnd=cwnd[:, i],
                inflight=inflight[:, i],
                rtt=rtt[:, i],
                extras=extras[i],
                start_time_s=0.0 if flow_starts is None else float(flow_starts[i]),
                end_time_s=None if flow_ends is None else flow_ends[i],
            )
            for i in range(self.network.num_flows)
        ]
        links = []
        for idx in sorted(queue):
            link = self.network.links[idx]
            buffer_pkts = link.buffer_pkts if math.isfinite(link.buffer_pkts) else math.inf
            links.append(
                LinkTrace(
                    name=link.name or f"link-{idx}",
                    capacity_pps=link.capacity_pps,
                    buffer_pkts=buffer_pkts,
                    queue=queue[idx],
                    loss_prob=loss[idx],
                    arrival_rate=arrival[idx],
                    departure_rate=departure[idx],
                )
            )
        return Trace(time=time, flows=flows, links=links, substrate="fluid")


def simulate(
    config: ScenarioConfig,
    record_interval_s: float = 1e-3,
    vectorized: bool = True,
    attenuate_arrivals: bool = True,
) -> Trace:
    """Convenience wrapper: build a :class:`FluidSimulator` and run it."""
    return FluidSimulator(
        config,
        record_interval_s=record_interval_s,
        vectorized=vectorized,
        attenuate_arrivals=attenuate_arrivals,
    ).run()


def simulate_many(
    configs: Sequence[ScenarioConfig],
    record_interval_s: float = 1e-3,
) -> list[Trace]:
    """Integrate many *independent* scenarios in lockstep as one batched system.

    The aggregate-validation figures (Figs. 6-10, 13-17) integrate dozens of
    scenarios that share the integration step and duration but differ in CCA
    mix, buffer size and queue discipline.  The scenarios never interact, so
    their fluid models can be stacked into a single block-diagonal system:
    one wide flow population, one link set containing every scenario's
    bottleneck, and a flow→link incidence that keeps each scenario on its
    own links.  Every numpy expression of the vectorized pipeline then
    amortises its per-operation overhead over the whole batch, which is
    where the bulk of the sweep speedup comes from on a single core.

    Each returned trace is numerically identical to running its scenario
    alone through :func:`simulate` (the per-flow arithmetic is element-wise
    and zero padding is exact).

    All scenarios must share ``dt``, ``duration_s`` and the global fluid
    numerics (sigmoid sharpness, drop-tail exponent, ``literal_xmax``);
    per-model parameters may differ freely because model batches group by
    ``batch_key``.
    """
    configs = list(configs)
    if not configs:
        return []
    if len(configs) == 1:
        return [simulate(configs[0], record_interval_s=record_interval_s)]
    if TELEMETRY.enabled:
        TELEMETRY.count("fluid.lockstep_batches")
        TELEMETRY.count("fluid.lockstep_scenarios", len(configs))
    first = configs[0]
    for cfg in configs[1:]:
        if cfg.fluid.dt != first.fluid.dt:
            raise ValueError("batched scenarios must share the integration step")
        if cfg.duration_s != first.duration_s:
            raise ValueError("batched scenarios must share the duration")
        for field_name in ("sigmoid_sharpness", "droptail_exponent", "literal_xmax"):
            if getattr(cfg.fluid, field_name) != getattr(first.fluid, field_name):
                raise ValueError(
                    f"batched scenarios must share fluid numerics ({field_name})"
                )

    combined_links: list = []
    combined_paths: list[Path] = []
    combined_flows: list = []
    combined_entries: list[FlowArrival] = []
    any_schedule = any(cfg.schedule is not None for cfg in configs)
    models: dict[int, FluidCCA] = {}
    initial_states: list = []
    flow_bounds = [0]
    queued_counts: list[int] = []
    for cfg in configs:
        sub = FluidSimulator(cfg, record_interval_s=record_interval_s)
        net = sub.network
        offset = len(combined_links)
        combined_links.extend(net.links)
        queued_counts.append(len(net.queued_link_indices()))
        if any_schedule:
            # Concatenate each scenario's materialised schedule; a
            # schedule-free scenario contributes plain start-only entries,
            # so its flows keep the legacy start-time masking.
            entries = cfg.flow_schedule()
            if entries is None:
                entries = tuple(
                    FlowArrival(start_time_s=f.start_time_s) for f in cfg.flows
                )
            combined_entries.extend(entries)
        for path in net.paths:
            combined_paths.append(
                Path(
                    link_indices=tuple(offset + i for i in path.link_indices),
                    return_delay_s=path.return_delay_s,
                )
            )
        for i in range(net.num_flows):
            models[len(combined_flows)] = sub.models[i]
            combined_flows.append(cfg.flows[i])
            # States are built with the scenario-local flow index and count:
            # e.g. BBRv1 desynchronises gain cycles by ``i % 6`` and BBRv2
            # spreads its wall-clock period by ``i / N`` *within* a scenario.
            initial_states.append(
                sub.models[i].initial_state(i, net.num_flows, net, cfg.fluid)
            )
        flow_bounds.append(len(combined_flows))

    network = Network(combined_links, combined_paths)
    # The merged scenario only carries the flows and the global fluid
    # numerics; the combined network (which already encodes every
    # scenario's topology) is passed explicitly, so any per-scenario
    # topology must not survive into the merged config (its path count
    # would not match the combined flow population).
    merged_config = dataclasses.replace(
        first, flows=tuple(combined_flows), topology=None, schedule=None
    )
    combined = FluidSimulator(
        merged_config,
        models=models,
        record_interval_s=record_interval_s,
        vectorized=True,
        network=network,
        initial_states=initial_states,
        schedule_entries=combined_entries if any_schedule else None,
    ).run()

    # Split the combined trace back into one trace per scenario.  Links are
    # emitted by global index, and each scenario's links form one contiguous
    # block, so its queued links are a contiguous run in the combined list.
    traces: list[Trace] = []
    link_pos = 0
    for j in range(len(configs)):
        flows = combined.flows[flow_bounds[j] : flow_bounds[j + 1]]
        links = combined.links[link_pos : link_pos + queued_counts[j]]
        link_pos += queued_counts[j]
        traces.append(
            Trace(time=combined.time, flows=flows, links=links, substrate="fluid")
        )
    return traces

"""Ring-buffer histories of time-varying signals.

The BBR fluid model is a system of *delay* differential equations: the
arrival rate at a link depends on sending rates one forward propagation
delay ago (Eq. 1), the RTprop estimator compares against the latency one
path delay ago (Eq. 9), and the delivery rate uses the link state one
backward delay ago (Eq. 17).  The method of steps (Section 4.1.1) solves
such systems by keeping the recent history of every delayed signal and
reading it back at a fixed lag.

:class:`SignalHistory` stores a scalar signal on the integrator's uniform
time grid; :class:`VectorHistory` stores one signal per flow (or per link)
in a single numpy array for efficiency.

Because every delay of a scenario is a *constant*, the vectorized simulator
converts them to integer lag tables once (:meth:`VectorHistory.lag_steps`)
and then performs one batched :meth:`VectorHistory.gather` per signal per
step instead of per-component Python calls.
"""

from __future__ import annotations

import numpy as np


class SignalHistory:
    """Fixed-lag history of a scalar signal sampled on a uniform grid."""

    def __init__(self, dt: float, max_delay: float, initial: float = 0.0) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        self.dt = dt
        # One extra slot so that a lookup of exactly max_delay is in range.
        self._size = int(np.ceil(max_delay / dt)) + 2
        self._buffer = np.full(self._size, float(initial))
        self._head = 0  # index of the most recent sample
        self._steps = 0

    def push(self, value: float) -> None:
        """Append the current sample (call exactly once per integration step)."""
        self._head = (self._head + 1) % self._size
        self._buffer[self._head] = float(value)
        self._steps += 1

    def at_delay(self, delay: float) -> float:
        """Value of the signal ``delay`` seconds ago (clamped to the oldest sample)."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        lag = int(round(delay / self.dt))
        lag = min(lag, min(self._steps, self._size - 1))
        return float(self._buffer[(self._head - lag) % self._size])

    @property
    def current(self) -> float:
        """Most recently pushed value."""
        return float(self._buffer[self._head])


class VectorHistory:
    """Fixed-lag history of a vector-valued signal (one entry per flow/link).

    Stored as a ``(slots, width)`` numpy array indexed circularly in time.
    """

    def __init__(
        self,
        width: int,
        dt: float,
        max_delay: float,
        initial: float | np.ndarray = 0.0,
    ) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        if dt <= 0:
            raise ValueError("dt must be positive")
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        self.width = width
        self.dt = dt
        self._size = int(np.ceil(max_delay / dt)) + 2
        self._buffer = np.zeros((self._size, width), dtype=float)
        self._buffer[:] = np.asarray(initial, dtype=float)
        self._head = 0
        self._steps = 0
        #: Batched-gather call count (telemetry; one int add per gather).
        self.gathers = 0

    def push(self, values: np.ndarray) -> None:
        """Append the current vector sample (call exactly once per step)."""
        values = np.asarray(values, dtype=float)
        if values.shape != (self.width,):
            raise ValueError(f"expected shape ({self.width},), got {values.shape}")
        self._head = (self._head + 1) % self._size
        self._buffer[self._head] = values
        self._steps += 1

    def _lag_steps(self, delay: float) -> int:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        lag = int(round(delay / self.dt))
        return min(lag, min(self._steps, self._size - 1))

    def at_delay(self, index: int, delay: float) -> float:
        """Value of component ``index`` of the signal ``delay`` seconds ago."""
        lag = self._lag_steps(delay)
        return float(self._buffer[(self._head - lag) % self._size, index])

    def vector_at_delay(self, delay: float) -> np.ndarray:
        """Whole vector ``delay`` seconds ago (single common lag)."""
        lag = self._lag_steps(delay)
        return self._buffer[(self._head - lag) % self._size].copy()

    def at_delays(self, delays: np.ndarray) -> np.ndarray:
        """Per-component lookup: component ``i`` read back ``delays[i]`` seconds ago."""
        delays = np.asarray(delays, dtype=float)
        if delays.shape != (self.width,):
            raise ValueError(f"expected shape ({self.width},), got {delays.shape}")
        if np.any(delays < 0):
            raise ValueError("delays must be non-negative")
        lags = np.rint(delays / self.dt).astype(int)
        lags = np.minimum(lags, min(self._steps, self._size - 1))
        rows = (self._head - lags) % self._size
        return self._buffer[rows, np.arange(self.width)].copy()

    # ------------------------------------------------------------------ #
    # Batched fixed-lag API (hot path of the vectorized simulator)
    # ------------------------------------------------------------------ #

    def lag_steps(self, delays: np.ndarray | float) -> np.ndarray:
        """Convert constant delays (seconds) into an integer lag table.

        The result can be passed to :meth:`gather` every step without
        re-doing the rounding and validation.  Delays are rounded to the
        nearest grid step, exactly as :meth:`at_delay` does.
        """
        delays = np.atleast_1d(np.asarray(delays, dtype=float))
        if np.any(delays < 0):
            raise ValueError("delays must be non-negative")
        lags = np.rint(delays / self.dt).astype(np.intp)
        if np.any(lags > self._size - 1):
            raise ValueError("delay exceeds the recorded history window")
        return lags

    def gather(self, indices: np.ndarray, lags: np.ndarray) -> np.ndarray:
        """Batched lookup: component ``indices[k]`` read ``lags[k]`` steps back.

        ``lags`` must come from :meth:`lag_steps` (pre-validated integer
        steps).  Lookups beyond the recorded history are clamped to the
        oldest sample, matching :meth:`at_delay`.
        """
        self.gathers += 1
        if self._steps < self._size - 1:
            lags = np.minimum(lags, self._steps)
        # Negative row indices wrap to the end of the buffer, which is
        # exactly the circular layout, so no modulo is needed.
        return self._buffer[self._head - lags, indices]

    def advance(self) -> np.ndarray:
        """Advance the write head one step and return the new row to fill.

        In-place alternative to :meth:`push` for hot loops: callers write
        the current sample directly into the returned row view, skipping
        one array copy per step.
        """
        head = self._head + 1
        if head == self._size:
            head = 0
        self._head = head
        self._steps += 1
        return self._buffer[head]

    @property
    def current(self) -> np.ndarray:
        """Most recently pushed vector."""
        return self._buffer[self._head].copy()

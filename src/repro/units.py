"""Physical-unit helpers.

The whole library works internally in *packet units*:

* rates (sending rate, capacity, delivery rate) in packets per second,
* windows, queue lengths, buffer sizes and inflight volumes in packets,
* time (delays, RTTs, simulation time) in seconds.

Using packets keeps the classic fluid-model equations in their natural
form (Reno's "+1 packet per RTT", BBRv1's 4-segment ProbeRTT window) and
matches what a packet-level emulator counts.  The helpers below convert
between packet units and the Mbps / bandwidth-delay-product (BDP) units
used throughout the paper's figures.
"""

from __future__ import annotations

# Default maximum segment size in bytes.  The paper's mininet setup uses
# standard Ethernet framing; 1500-byte segments are the conventional choice.
MSS_BYTES: int = 1500

BITS_PER_BYTE: int = 8


def mbps_to_pps(rate_mbps: float, mss_bytes: int = MSS_BYTES) -> float:
    """Convert a rate in megabits per second to packets per second."""
    if rate_mbps < 0:
        raise ValueError(f"rate must be non-negative, got {rate_mbps}")
    return rate_mbps * 1e6 / (mss_bytes * BITS_PER_BYTE)


def pps_to_mbps(rate_pps: float, mss_bytes: int = MSS_BYTES) -> float:
    """Convert a rate in packets per second to megabits per second."""
    if rate_pps < 0:
        raise ValueError(f"rate must be non-negative, got {rate_pps}")
    return rate_pps * mss_bytes * BITS_PER_BYTE / 1e6


def bdp_packets(capacity_pps: float, rtt_s: float) -> float:
    """Bandwidth-delay product in packets for a capacity and round-trip time."""
    if capacity_pps < 0:
        raise ValueError(f"capacity must be non-negative, got {capacity_pps}")
    if rtt_s < 0:
        raise ValueError(f"rtt must be non-negative, got {rtt_s}")
    return capacity_pps * rtt_s


def buffer_packets(bdp_multiple: float, capacity_pps: float, rtt_s: float) -> float:
    """Buffer size in packets for a buffer expressed in BDP multiples."""
    if bdp_multiple < 0:
        raise ValueError(f"buffer multiple must be non-negative, got {bdp_multiple}")
    return bdp_multiple * bdp_packets(capacity_pps, rtt_s)


def packets_to_mbit(packets: float, mss_bytes: int = MSS_BYTES) -> float:
    """Convert a volume in packets to megabits."""
    return packets * mss_bytes * BITS_PER_BYTE / 1e6


def mbit_to_packets(mbit: float, mss_bytes: int = MSS_BYTES) -> float:
    """Convert a volume in megabits to packets."""
    return mbit * 1e6 / (mss_bytes * BITS_PER_BYTE)

"""Churn metrics for time-varying flow populations (FlowSchedule runs).

Long-lived-flow metrics (Jain fairness over whole-trace means, aggregate
loss/utilization) answer the paper's steady-state questions, but a
scheduled workload — Poisson arrivals, heavy-tailed sizes, on/off sources —
needs lifetime-aware ones:

* **flow completion time** (FCT): ``end_time_s - start_time_s`` per
  completed flow, summarised as percentiles.  The emulator records the
  instant the last packet of a finite flow is acknowledged; the fluid model
  the first integration step at which the delivered volume reaches the
  flow size.
* **time-weighted Jain over the active set**: Jain's index computed per
  trace sample over the delivery rates of the flows *alive at that
  instant*, averaged weighted by the sample interval.  Whole-trace means
  would charge a short flow for the time it did not exist.
* **active-flow counts**: the per-interval number of concurrently active
  flows — the offered-load trajectory the schedule actually produced.

All functions consume the common :class:`~repro.metrics.traces.Trace`
(either substrate) and rely only on the ``start_time_s``/``end_time_s``
lifetime fields of :class:`~repro.metrics.traces.FlowTrace`.
"""

from __future__ import annotations

import math

import numpy as np

from .traces import Trace


def flow_completion_times(trace: Trace) -> np.ndarray:
    """Completion times (seconds) of the flows that departed within the run.

    Flows still active at the end of the trace (``end_time_s is None``) are
    right-censored and excluded; an empty array means no flow completed.
    """
    fcts = [
        flow.end_time_s - flow.start_time_s
        for flow in trace.flows
        if flow.end_time_s is not None
    ]
    return np.asarray(fcts, dtype=float)


def fct_percentile_s(trace: Trace, percentile: float) -> float:
    """One FCT percentile in seconds; NaN when no flow completed."""
    if not 0 <= percentile <= 100:
        raise ValueError("percentile must lie in [0, 100]")
    fcts = flow_completion_times(trace)
    if fcts.size == 0:
        return math.nan
    return float(np.percentile(fcts, percentile))


def active_flow_mask(trace: Trace) -> np.ndarray:
    """Boolean ``(num_flows, len(time))`` matrix: flow i alive at sample k.

    A flow is alive from its start (inclusive) until its departure
    (exclusive); a flow that never departed is alive to the end.
    """
    time = trace.time
    mask = np.empty((trace.num_flows, len(time)), dtype=bool)
    for i, flow in enumerate(trace.flows):
        alive = time >= flow.start_time_s
        if flow.end_time_s is not None:
            alive &= time < flow.end_time_s
        mask[i] = alive
    return mask


def active_flow_counts(trace: Trace) -> np.ndarray:
    """Number of concurrently active flows at each trace sample."""
    return active_flow_mask(trace).sum(axis=0)


def _sample_weights(time: np.ndarray) -> np.ndarray:
    """Interval length each sample represents (handles a partial tail)."""
    if len(time) < 2:
        return np.ones_like(time)
    # Midpoint rule: interior samples own half of each neighbouring gap,
    # the first/last own their single half-gap (plus nothing beyond the
    # trace), so the weights integrate the step function exactly.
    gaps = np.diff(time)
    weights = np.empty_like(time)
    weights[0] = gaps[0] / 2.0
    weights[-1] = gaps[-1] / 2.0
    weights[1:-1] = (gaps[:-1] + gaps[1:]) / 2.0
    return weights


def mean_active_flows(trace: Trace) -> float:
    """Time-weighted mean number of concurrently active flows."""
    counts = active_flow_counts(trace)
    if counts.size == 0:
        return 0.0
    weights = _sample_weights(trace.time)
    total = float(np.sum(weights))
    if total <= 0:
        return float(np.mean(counts))
    return float(np.sum(counts * weights) / total)


def active_jain_fairness(trace: Trace) -> float:
    """Time-weighted Jain fairness over the *active* flow set.

    At each trace sample, Jain's index is computed over the delivery rates
    of the flows alive at that instant (same scale-invariant normalisation
    as :func:`~repro.metrics.fairness.jain_index`: rates are divided by the
    per-sample maximum before squaring).  Samples with no active flow carry
    no information and are excluded; the remaining per-sample indices are
    averaged weighted by the interval each sample represents.  NaN when no
    sample has an active flow.
    """
    if trace.num_flows == 0 or len(trace.time) == 0:
        return math.nan
    mask = active_flow_mask(trace)
    rates = np.vstack([flow.delivery_rate for flow in trace.flows])
    rates = np.where(mask, np.clip(rates, 0.0, None), 0.0)
    counts = mask.sum(axis=0)
    valid = counts > 0
    if not np.any(valid):
        return math.nan
    peak = rates.max(axis=0)
    # Scale each sample by its peak rate; all-zero samples (active flows
    # that delivered nothing) conventionally count as perfectly fair,
    # matching jain_index's peak == 0 convention.
    safe_peak = np.where(peak > 0, peak, 1.0)
    scaled = rates / safe_peak
    totals = scaled.sum(axis=0)
    square_sums = (scaled * scaled).sum(axis=0)
    jain = np.ones(len(trace.time))
    live = valid & (peak > 0)
    jain[live] = (totals[live] * totals[live]) / (counts[live] * square_sums[live])
    weights = _sample_weights(trace.time)
    weight_sum = float(np.sum(weights[valid]))
    if weight_sum <= 0:
        return float(np.mean(jain[valid]))
    return float(np.sum(jain[valid] * weights[valid]) / weight_sum)

"""Aggregate performance metrics of the paper's evaluation (Figs. 7-10, 14-17).

Every metric takes a :class:`~repro.metrics.traces.Trace` — produced either
by the fluid model or by the packet-level emulator — so that both substrates
are evaluated by exactly the same code.

* **loss** (Fig. 7): fraction of traffic arriving at the bottleneck that is
  dropped, in percent.
* **buffer occupancy** (Fig. 8): time-average queue length as a share of the
  buffer, in percent.
* **utilization** (Fig. 9): time-average bottleneck departure rate as a
  share of capacity, in percent.
* **jitter** (Fig. 10): mean absolute RTT difference between consecutive
  (virtual) packets, in milliseconds.  The fluid model has no packets, so —
  exactly as the paper does — the RTT series is sampled at the virtual
  packet rate ``g * N / C`` and the mean absolute difference of consecutive
  samples is reported.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .fairness import trace_fairness
from .traces import Trace, resample


def loss_percent(trace: Trace) -> float:
    """Bottleneck loss rate in percent of arriving traffic (Fig. 7)."""
    return 100.0 * trace.bottleneck().loss_fraction()


def buffer_occupancy_percent(trace: Trace) -> float:
    """Mean bottleneck queue occupancy in percent of the buffer (Fig. 8)."""
    return 100.0 * trace.bottleneck().mean_occupancy()


def utilization_percent(trace: Trace) -> float:
    """Mean bottleneck utilization in percent of capacity (Fig. 9)."""
    return min(100.0, 100.0 * trace.bottleneck().utilization())


def jitter_ms(trace: Trace, packet_size_factor: float = 1.0) -> float:
    """Mean packet-delay variation in milliseconds (Fig. 10).

    The RTT of each flow is sampled every ``packet_size_factor * N / C``
    seconds (the virtual inter-packet time of the aggregate) and the mean
    absolute difference of consecutive samples, averaged over flows, is
    returned.
    """
    if packet_size_factor <= 0:
        raise ValueError("packet_size_factor must be positive")
    bottleneck = trace.bottleneck()
    interval = packet_size_factor * trace.num_flows / bottleneck.capacity_pps
    if trace.duration <= 2 * interval:
        return 0.0
    sample_times = np.arange(trace.time[0], trace.time[-1], interval)
    jitters = []
    for flow in trace.flows:
        rtt = resample(trace.time, flow.rtt, sample_times)
        if len(rtt) > 1:
            jitters.append(float(np.mean(np.abs(np.diff(rtt)))))
    if not jitters:
        return 0.0
    return 1000.0 * float(np.mean(jitters))


@dataclass(frozen=True)
class AggregateMetrics:
    """The five aggregate metrics the paper reports for each scenario."""

    jain_fairness: float
    loss_percent: float
    buffer_occupancy_percent: float
    utilization_percent: float
    jitter_ms: float

    def as_dict(self) -> dict[str, float]:
        return {
            "jain_fairness": self.jain_fairness,
            "loss_percent": self.loss_percent,
            "buffer_occupancy_percent": self.buffer_occupancy_percent,
            "utilization_percent": self.utilization_percent,
            "jitter_ms": self.jitter_ms,
        }


def aggregate_metrics(trace: Trace) -> AggregateMetrics:
    """Compute all aggregate metrics of the paper's Figs. 6-10 for one trace."""
    return AggregateMetrics(
        jain_fairness=trace_fairness(trace),
        loss_percent=loss_percent(trace),
        buffer_occupancy_percent=buffer_occupancy_percent(trace),
        utilization_percent=utilization_percent(trace),
        jitter_ms=jitter_ms(trace),
    )

"""Aggregate performance metrics of the paper's evaluation (Figs. 7-10, 14-17).

Every metric takes a :class:`~repro.metrics.traces.Trace` — produced either
by the fluid model or by the packet-level emulator — so that both substrates
are evaluated by exactly the same code.

* **loss** (Fig. 7): fraction of traffic arriving at the bottleneck that is
  dropped, in percent.
* **buffer occupancy** (Fig. 8): time-average queue length as a share of the
  buffer, in percent.
* **utilization** (Fig. 9): time-average bottleneck departure rate as a
  share of capacity, in percent.
* **jitter** (Fig. 10): mean absolute RTT difference between consecutive
  (virtual) packets, in milliseconds.  The fluid model has no packets, so —
  exactly as the paper does — the RTT series is sampled at the virtual
  packet rate ``g * N / C`` and the mean absolute difference of consecutive
  samples is reported.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from .churn import active_jain_fairness, fct_percentile_s, mean_active_flows
from .fairness import trace_fairness
from .traces import Trace, resample


def loss_percent(trace: Trace) -> float:
    """Bottleneck loss rate in percent of arriving traffic (Fig. 7)."""
    return 100.0 * trace.bottleneck().loss_fraction()


def buffer_occupancy_percent(trace: Trace) -> float:
    """Mean bottleneck queue occupancy in percent of the buffer (Fig. 8)."""
    return 100.0 * trace.bottleneck().mean_occupancy()


def utilization_percent(trace: Trace) -> float:
    """Mean bottleneck utilization in percent of capacity (Fig. 9)."""
    return min(100.0, 100.0 * trace.bottleneck().utilization())


def jitter_ms(trace: Trace, packet_size_factor: float = 1.0) -> float:
    """Mean packet-delay variation in milliseconds (Fig. 10).

    The RTT of each flow is sampled every ``packet_size_factor * N / C``
    seconds (the virtual inter-packet time of the aggregate) and the mean
    absolute difference of consecutive samples, averaged over flows, is
    returned.
    """
    if packet_size_factor <= 0:
        raise ValueError("packet_size_factor must be positive")
    bottleneck = trace.bottleneck()
    interval = packet_size_factor * trace.num_flows / bottleneck.capacity_pps
    if trace.duration <= 2 * interval:
        return 0.0
    sample_times = np.arange(trace.time[0], trace.time[-1], interval)
    jitters = []
    for flow in trace.flows:
        rtt = resample(trace.time, flow.rtt, sample_times)
        if len(rtt) > 1:
            jitters.append(float(np.mean(np.abs(np.diff(rtt)))))
    if not jitters:
        return 0.0
    return 1000.0 * float(np.mean(jitters))


@dataclass(frozen=True, eq=False)
class AggregateMetrics:
    """The five aggregate metrics the paper reports for each scenario.

    The churn fields extend them for time-varying flow populations
    (:class:`~repro.config.FlowSchedule` workloads): flow-completion-time
    percentiles over the flows that departed within the run, Jain fairness
    over the *active* flow set (time-weighted), and the time-weighted mean
    number of concurrently active flows.  FCT fields are NaN for runs in
    which no flow completed (in particular every long-lived-flow run), so
    schedule-free results keep their historical five-metric meaning while
    every record shares one stable column set.
    """

    jain_fairness: float
    loss_percent: float
    buffer_occupancy_percent: float
    utilization_percent: float
    jitter_ms: float
    fct_p50_s: float = math.nan
    fct_p95_s: float = math.nan
    fct_p99_s: float = math.nan
    active_jain_fairness: float = math.nan
    mean_active_flows: float = math.nan

    def __eq__(self, other: object) -> bool:
        # NaN-aware field equality: the FCT columns are NaN for every run
        # in which no flow completed, and two such records must round-trip
        # the store (and compare in tests) as equal.  Plain dataclass
        # equality would make NaN != NaN, so no record could equal itself.
        if not isinstance(other, AggregateMetrics):
            return NotImplemented
        a, b = self.as_dict(), other.as_dict()
        return all(
            a[name] == b[name] or (math.isnan(a[name]) and math.isnan(b[name]))
            for name in a
        )

    def __hash__(self) -> int:
        # Normalise NaN to a sentinel: since Python 3.10, hash(nan) is
        # identity-based, which would break the eq/hash contract here.
        return hash(
            tuple(
                None if math.isnan(value) else value
                for value in self.as_dict().values()
            )
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "jain_fairness": self.jain_fairness,
            "loss_percent": self.loss_percent,
            "buffer_occupancy_percent": self.buffer_occupancy_percent,
            "utilization_percent": self.utilization_percent,
            "jitter_ms": self.jitter_ms,
            "fct_p50_s": self.fct_p50_s,
            "fct_p95_s": self.fct_p95_s,
            "fct_p99_s": self.fct_p99_s,
            "active_jain_fairness": self.active_jain_fairness,
            "mean_active_flows": self.mean_active_flows,
        }


def aggregate_metrics(trace: Trace) -> AggregateMetrics:
    """Compute all aggregate metrics of the paper's Figs. 6-10 for one trace.

    Churn metrics ride along: FCT percentiles are NaN when no flow departed
    within the trace; the active-set fields are always well defined (for
    long-lived flows they degenerate to the whole-population values).
    """
    return AggregateMetrics(
        jain_fairness=trace_fairness(trace),
        loss_percent=loss_percent(trace),
        buffer_occupancy_percent=buffer_occupancy_percent(trace),
        utilization_percent=utilization_percent(trace),
        jitter_ms=jitter_ms(trace),
        fct_p50_s=fct_percentile_s(trace, 50),
        fct_p95_s=fct_percentile_s(trace, 95),
        fct_p99_s=fct_percentile_s(trace, 99),
        active_jain_fairness=active_jain_fairness(trace),
        mean_active_flows=mean_active_flows(trace),
    )


@dataclass(frozen=True)
class LinkMetrics:
    """Aggregate state of one queued link of a (multi-bottleneck) trace.

    The scalar :class:`AggregateMetrics` keep the paper's single-bottleneck
    framing (they read ``trace.bottleneck()``); multi-bottleneck topologies
    (parking lots, multi-dumbbells) additionally report one of these per
    queued link, so per-hop questions — where does the loss happen, which
    hop bloats — have first-class answers.
    """

    name: str
    capacity_pps: float
    utilization_percent: float
    loss_percent: float
    mean_queue_pkts: float
    buffer_occupancy_percent: float

    def as_dict(self) -> dict[str, float | str]:
        return {
            "link": self.name,
            "capacity_pps": self.capacity_pps,
            "utilization_percent": self.utilization_percent,
            "loss_percent": self.loss_percent,
            "mean_queue_pkts": self.mean_queue_pkts,
            "buffer_occupancy_percent": self.buffer_occupancy_percent,
        }


def link_metrics(trace: Trace) -> list[LinkMetrics]:
    """Per-link aggregate metrics, one entry per queued link of the trace."""
    out = []
    for link in trace.links:
        mean_queue = float(np.mean(link.queue)) if len(link.queue) else 0.0
        out.append(
            LinkMetrics(
                name=link.name,
                capacity_pps=link.capacity_pps,
                utilization_percent=min(100.0, 100.0 * link.utilization()),
                loss_percent=100.0 * link.loss_fraction(),
                mean_queue_pkts=mean_queue,
                buffer_occupancy_percent=100.0 * link.mean_occupancy(),
            )
        )
    return out


#: Two-sided 95% Student-t critical values, indexed by degrees of freedom
#: (1-based; df > 30 falls back to the normal value 1.96).  Enough for the
#: seed-replication counts the campaigns use, without a scipy dependency.
_T95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def _t95(df: int) -> float:
    if df < 1:
        return 0.0
    return _T95[df - 1] if df <= len(_T95) else 1.96


@dataclass(frozen=True)
class MetricsSummary:
    """Mean/std/CI of :class:`AggregateMetrics` replicated across seeds.

    The paper's aggregate figures average repeated randomized mininet runs;
    this is the corresponding per-point summary: the per-metric sample mean,
    sample standard deviation (ddof=1) and the half-width of the two-sided
    95% Student-t confidence interval over ``num_seeds`` replicas.
    """

    mean: AggregateMetrics
    std: AggregateMetrics
    ci95: AggregateMetrics
    num_seeds: int

    def as_dict(self) -> dict[str, float]:
        """Flatten into ``{metric}_mean/_std/_ci95`` columns plus the count."""
        out: dict[str, float] = {}
        mean, std, ci = self.mean.as_dict(), self.std.as_dict(), self.ci95.as_dict()
        for name in mean:
            out[f"{name}_mean"] = mean[name]
            out[f"{name}_std"] = std[name]
            out[f"{name}_ci95"] = ci[name]
        out["num_seeds"] = self.num_seeds
        return out


def summarize_metrics(replicas: Sequence[AggregateMetrics]) -> MetricsSummary:
    """Aggregate per-seed :class:`AggregateMetrics` into a :class:`MetricsSummary`."""
    if not replicas:
        raise ValueError("at least one metrics replica is required")
    n = len(replicas)
    names = list(replicas[0].as_dict())
    values = {name: np.array([r.as_dict()[name] for r in replicas]) for name in names}
    means = {name: float(np.mean(values[name])) for name in names}
    if n > 1:
        stds = {name: float(np.std(values[name], ddof=1)) for name in names}
        half = _t95(n - 1) / math.sqrt(n)
        cis = {name: half * stds[name] for name in names}
    else:
        stds = {name: 0.0 for name in names}
        cis = {name: 0.0 for name in names}
    return MetricsSummary(
        mean=AggregateMetrics(**means),
        std=AggregateMetrics(**stds),
        ci95=AggregateMetrics(**cis),
        num_seeds=n,
    )

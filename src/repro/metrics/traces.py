"""Trace containers shared by the fluid model and the packet-level emulator.

Both substrates produce a :class:`Trace`: a common time grid, one
:class:`FlowTrace` per sender (sending rate, delivery rate, congestion
window, inflight, RTT, plus model-specific extras) and one
:class:`LinkTrace` per queued link (queue length, loss probability, arrival
and departure rates).  All aggregate metrics of the paper's evaluation
(Figs. 6-10 and 13-17) are computed from these containers, so the fluid
model and the emulator are compared on exactly the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class FlowTrace:
    """Time series describing one flow.

    All arrays are aligned with the parent :class:`Trace.time` grid.
    Rates are packets/second; windows and inflight are packets; RTT seconds.

    ``start_time_s``/``end_time_s`` record the flow's lifetime under a
    :class:`~repro.config.FlowSchedule`: when it started sending and when
    it departed (finite-size completion or on/off switch-off) — ``None``
    means the flow was still active at the end of the run.  The flow
    completion time is ``end_time_s - start_time_s``.  Long-lived legacy
    flows keep the defaults (started at their configured time, never
    departed).
    """

    cca: str
    rate: np.ndarray
    delivery_rate: np.ndarray
    cwnd: np.ndarray
    inflight: np.ndarray
    rtt: np.ndarray
    extras: dict[str, np.ndarray] = field(default_factory=dict)
    start_time_s: float = 0.0
    end_time_s: float | None = None

    def __post_init__(self) -> None:
        lengths = {
            len(self.rate),
            len(self.delivery_rate),
            len(self.cwnd),
            len(self.inflight),
            len(self.rtt),
        }
        if len(lengths) != 1:
            raise ValueError("flow trace arrays must have equal length")

    def mean_rate(self) -> float:
        """Time-average sending rate in packets/second."""
        return float(np.mean(self.rate)) if len(self.rate) else 0.0

    def mean_goodput(self) -> float:
        """Time-average delivery rate in packets/second."""
        return float(np.mean(self.delivery_rate)) if len(self.delivery_rate) else 0.0


@dataclass
class LinkTrace:
    """Time series describing one queued link."""

    name: str
    capacity_pps: float
    buffer_pkts: float
    queue: np.ndarray
    loss_prob: np.ndarray
    arrival_rate: np.ndarray
    departure_rate: np.ndarray

    def __post_init__(self) -> None:
        lengths = {
            len(self.queue),
            len(self.loss_prob),
            len(self.arrival_rate),
            len(self.departure_rate),
        }
        if len(lengths) != 1:
            raise ValueError("link trace arrays must have equal length")
        if self.capacity_pps <= 0:
            raise ValueError("capacity must be positive")

    def mean_occupancy(self) -> float:
        """Time-average queue occupancy as a fraction of the buffer size."""
        if not len(self.queue) or not np.isfinite(self.buffer_pkts):
            return 0.0
        return float(np.mean(self.queue) / self.buffer_pkts)

    def utilization(self) -> float:
        """Time-average departure rate as a fraction of capacity."""
        if not len(self.departure_rate):
            return 0.0
        return float(np.mean(self.departure_rate) / self.capacity_pps)

    def loss_fraction(self) -> float:
        """Fraction of arriving traffic lost at this link."""
        arrived = float(np.sum(self.arrival_rate))
        if arrived <= 0:
            return 0.0
        lost = float(np.sum(self.arrival_rate * self.loss_prob))
        return lost / arrived


@dataclass
class Trace:
    """A full simulation or emulation run."""

    time: np.ndarray
    flows: list[FlowTrace]
    links: list[LinkTrace]
    substrate: str = "fluid"

    def __post_init__(self) -> None:
        for flow in self.flows:
            if len(flow.rate) != len(self.time):
                raise ValueError("flow trace length does not match the time grid")
        for link in self.links:
            if len(link.queue) != len(self.time):
                raise ValueError("link trace length does not match the time grid")

    @property
    def num_flows(self) -> int:
        return len(self.flows)

    @property
    def duration(self) -> float:
        return float(self.time[-1] - self.time[0]) if len(self.time) > 1 else 0.0

    @property
    def dt(self) -> float:
        """Sampling interval of the trace grid."""
        if len(self.time) < 2:
            raise ValueError("trace too short to have a sampling interval")
        return float(self.time[1] - self.time[0])

    def bottleneck(self) -> LinkTrace:
        """The trace of the bottleneck link (smallest capacity)."""
        if not self.links:
            raise ValueError("trace has no link data")
        return min(self.links, key=lambda link: link.capacity_pps)

    def after(self, t_start: float) -> Trace:
        """Restrict the trace to ``time >= t_start`` (e.g. to drop a warm-up)."""
        mask = self.time >= t_start
        if not np.any(mask):
            raise ValueError("t_start is beyond the end of the trace")
        flows = [
            FlowTrace(
                cca=f.cca,
                rate=f.rate[mask],
                delivery_rate=f.delivery_rate[mask],
                cwnd=f.cwnd[mask],
                inflight=f.inflight[mask],
                rtt=f.rtt[mask],
                extras={k: v[mask] for k, v in f.extras.items()},
                start_time_s=f.start_time_s,
                end_time_s=f.end_time_s,
            )
            for f in self.flows
        ]
        links = [
            LinkTrace(
                name=link.name,
                capacity_pps=link.capacity_pps,
                buffer_pkts=link.buffer_pkts,
                queue=link.queue[mask],
                loss_prob=link.loss_prob[mask],
                arrival_rate=link.arrival_rate[mask],
                departure_rate=link.departure_rate[mask],
            )
            for link in self.links
        ]
        return Trace(time=self.time[mask], flows=flows, links=links, substrate=self.substrate)

    def normalized_rows(self) -> dict[str, np.ndarray]:
        """Paper-style normalised series for trace figures (Figs. 4, 5, 11, 12).

        Returns the bottleneck-normalised aggregate sending rate (% of link
        rate), queue (% of buffer), loss (%), and the relative excess RTT (%)
        of the first flow — the quantities plotted in the validation figures.
        """
        bottleneck = self.bottleneck()
        total_rate = np.sum([f.rate for f in self.flows], axis=0)
        rate_pct = 100.0 * total_rate / bottleneck.capacity_pps
        if np.isfinite(bottleneck.buffer_pkts) and bottleneck.buffer_pkts > 0:
            queue_pct = 100.0 * bottleneck.queue / bottleneck.buffer_pkts
        else:
            queue_pct = np.zeros_like(bottleneck.queue)
        loss_pct = 100.0 * bottleneck.loss_prob
        base_rtt = float(np.min(self.flows[0].rtt)) if len(self.flows[0].rtt) else 0.0
        if base_rtt > 0:
            rtt_pct = 100.0 * (self.flows[0].rtt - base_rtt) / base_rtt
        else:
            rtt_pct = np.zeros_like(self.flows[0].rtt)
        return {
            "time": self.time,
            "rate_pct": rate_pct,
            "queue_pct": queue_pct,
            "loss_pct": loss_pct,
            "rtt_excess_pct": rtt_pct,
        }


def resample(time: np.ndarray, values: np.ndarray, new_time: np.ndarray) -> np.ndarray:
    """Linearly resample a series onto a new time grid (used for jitter sampling)."""
    if len(time) != len(values):
        raise ValueError("time and values must have equal length")
    if len(time) == 0:
        return np.zeros_like(new_time)
    return np.interp(new_time, time, values)

"""Trace containers and aggregate performance metrics."""

from .aggregate import (
    AggregateMetrics,
    LinkMetrics,
    MetricsSummary,
    aggregate_metrics,
    buffer_occupancy_percent,
    jitter_ms,
    link_metrics,
    loss_percent,
    summarize_metrics,
    utilization_percent,
)
from .churn import (
    active_flow_counts,
    active_flow_mask,
    active_jain_fairness,
    fct_percentile_s,
    flow_completion_times,
    mean_active_flows,
)
from .fairness import jain_index, per_cca_share, trace_fairness
from .traces import FlowTrace, LinkTrace, Trace, resample

__all__ = [
    "AggregateMetrics",
    "LinkMetrics",
    "MetricsSummary",
    "aggregate_metrics",
    "link_metrics",
    "summarize_metrics",
    "buffer_occupancy_percent",
    "jitter_ms",
    "loss_percent",
    "utilization_percent",
    "active_flow_counts",
    "active_flow_mask",
    "active_jain_fairness",
    "fct_percentile_s",
    "flow_completion_times",
    "mean_active_flows",
    "jain_index",
    "per_cca_share",
    "trace_fairness",
    "FlowTrace",
    "LinkTrace",
    "Trace",
    "resample",
]

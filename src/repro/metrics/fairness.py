"""Fairness metrics (Fig. 6 and Fig. 13 of the paper).

The paper reports Jain's fairness index over the per-flow throughputs
obtained from 5-second traces.  The index is

    J(x_1, ..., x_N) = (sum x_i)^2 / (N * sum x_i^2)

and lies in ``[1/N, 1]``: 1 for a perfectly equal allocation, ``1/N`` when a
single flow monopolises the bottleneck.

The index is scale-invariant, which the implementation exploits for
numerical robustness: allocations are normalised by their maximum before
squaring, so denormal inputs (whose squares underflow to zero) and huge
inputs (whose squares overflow to ``inf``) are both handled exactly.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from .traces import Trace


def jain_index(allocations: Sequence[float]) -> float:
    """Jain's fairness index of a list of non-negative allocations.

    Scale-invariance is used to keep the computation in a safe floating
    point range: values are divided by their maximum before squaring, so
    denormal allocations (``x**2 == 0`` while ``sum(x) > 0``) no longer
    divide by zero and huge allocations no longer overflow.  Infinite
    allocations are handled as the limit of finite ones growing without
    bound: the ``k`` infinite flows share equally and the finite ones
    vanish, giving ``k / N``.
    """
    values = np.asarray(list(allocations), dtype=float)
    if values.size == 0:
        raise ValueError("fairness of an empty allocation is undefined")
    if np.any(np.isnan(values)):
        raise ValueError("allocations must not be NaN")
    if np.any(values < 0):
        raise ValueError("allocations must be non-negative")
    if np.any(np.isinf(values)):
        infinite = int(np.count_nonzero(np.isinf(values)))
        return infinite / values.size
    peak = float(np.max(values))
    if peak == 0.0:
        # No flow got anything: conventionally perfectly fair.
        return 1.0
    scaled = values / peak  # largest entry is exactly 1.0
    total = float(np.sum(scaled))
    square_sum = float(np.sum(scaled * scaled))  # >= 1.0 by construction
    return float(total * total / (values.size * square_sum))


def trace_fairness(trace: Trace, use_goodput: bool = True) -> float:
    """Jain fairness of a trace, computed over per-flow mean rates.

    ``use_goodput`` selects the delivery rate (what the paper's iPerf
    measurements report); otherwise the raw sending rate is used.  Traces
    with arbitrarily tiny (denormal) or huge per-flow means are safe: the
    underlying :func:`jain_index` is scale-invariant.
    """
    if use_goodput:
        allocations = [flow.mean_goodput() for flow in trace.flows]
    else:
        allocations = [flow.mean_rate() for flow in trace.flows]
    return jain_index(allocations)


def per_cca_share(trace: Trace) -> dict[str, float]:
    """Aggregate goodput share of each CCA present in the trace.

    Useful for inter-CCA fairness statements such as Insight 2 (BBRv1
    starves loss-based CCAs): the share of e.g. all Reno flows combined.
    Like :func:`jain_index`, the computation normalises by the largest
    per-CCA total first so that denormal goodputs do not lose their ratio
    and huge goodputs do not overflow the grand total to ``inf``.
    """
    totals: dict[str, float] = {}
    for flow in trace.flows:
        totals[flow.cca] = totals.get(flow.cca, 0.0) + flow.mean_goodput()
    if not totals:
        return {}
    peak = max(totals.values())
    if peak == 0.0:
        return {cca: 0.0 for cca in totals}
    if math.isinf(peak):
        infinite = [cca for cca, value in totals.items() if math.isinf(value)]
        share = 1.0 / len(infinite)
        return {cca: (share if math.isinf(value) else 0.0) for cca, value in totals.items()}
    scaled = {cca: value / peak for cca, value in totals.items()}
    grand_total = sum(scaled.values())  # in [1, num_ccas]: safe divisor
    return {cca: value / grand_total for cca, value in scaled.items()}

"""Fairness metrics (Fig. 6 and Fig. 13 of the paper).

The paper reports Jain's fairness index over the per-flow throughputs
obtained from 5-second traces.  The index is

    J(x_1, ..., x_N) = (sum x_i)^2 / (N * sum x_i^2)

and lies in ``[1/N, 1]``: 1 for a perfectly equal allocation, ``1/N`` when a
single flow monopolises the bottleneck.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .traces import Trace


def jain_index(allocations: Sequence[float]) -> float:
    """Jain's fairness index of a list of non-negative allocations."""
    values = np.asarray(list(allocations), dtype=float)
    if values.size == 0:
        raise ValueError("fairness of an empty allocation is undefined")
    if np.any(values < 0):
        raise ValueError("allocations must be non-negative")
    total = float(np.sum(values))
    if total == 0:
        # No flow got anything: conventionally perfectly fair.
        return 1.0
    return float(total**2 / (values.size * float(np.sum(values**2))))


def trace_fairness(trace: Trace, use_goodput: bool = True) -> float:
    """Jain fairness of a trace, computed over per-flow mean rates.

    ``use_goodput`` selects the delivery rate (what the paper's iPerf
    measurements report); otherwise the raw sending rate is used.
    """
    if use_goodput:
        allocations = [flow.mean_goodput() for flow in trace.flows]
    else:
        allocations = [flow.mean_rate() for flow in trace.flows]
    return jain_index(allocations)


def per_cca_share(trace: Trace) -> dict[str, float]:
    """Aggregate goodput share of each CCA present in the trace.

    Useful for inter-CCA fairness statements such as Insight 2 (BBRv1
    starves loss-based CCAs): the share of e.g. all Reno flows combined.
    """
    totals: dict[str, float] = {}
    for flow in trace.flows:
        totals[flow.cca] = totals.get(flow.cca, 0.0) + flow.mean_goodput()
    grand_total = sum(totals.values())
    if grand_total == 0:
        return {cca: 0.0 for cca in totals}
    return {cca: value / grand_total for cca, value in totals.items()}

"""Multi-bottleneck topology builders (parking lots, multi-dumbbells).

The paper evaluates exclusively on the dumbbell of Fig. 3 and names
multi-bottleneck topologies as future work.  This module opens that axis:
it builds :class:`~repro.config.TopologyConfig` values — named queued links
plus one link-name path per flow — that a
:class:`~repro.config.ScenarioConfig` carries alongside its flows and that
both substrates (the fluid integrator and the packet emulator) execute
natively.  Three canonical shapes are provided:

* :func:`dumbbell` — the paper's topology as a one-hop chain; useful to
  express the legacy scenarios through the topology code path (equivalence
  with the single-``bottleneck`` form is tested bit-for-bit).
* :func:`parking_lot` — a chain of ``hops`` bottleneck links.  ``long``
  flows traverse the whole chain; every hop additionally carries its own
  single-hop cross flows.  The classic multi-bottleneck fairness topology:
  long flows pay the loss/latency of every hop, cross flows only of one.
* :func:`multi_dumbbell` — several disjoint dumbbells simulated as one
  scenario, optionally coupled by ``span`` flows that traverse every
  bottleneck in series (cross-traffic between dumbbells).

Flow ordering is part of the contract (the scenario builder must list its
:class:`~repro.config.FlowConfig` entries in the same order as the returned
``paths``): long/local flows first, then per-hop cross flows / span flows,
exactly as documented on each builder.

Modeling notes shared by both substrates:

* Each flow still owns an implicit unsaturated access link
  (``FlowConfig.access_delay_s``); topology links model only the queued
  segments.  Return (ACK) paths are pure propagation delays of the same
  total length as the forward path (symmetric routing, as in the paper).
* Link buffers are expressed in multiples of the *reference* bottleneck BDP
  (reference capacity x mean propagation RTT over all flows), so a 1-BDP
  parking-lot hop holds the same number of packets at every hop.
* In the fluid substrate, per-flow path latency and loss are composed along
  the path (latency adds per-link queueing delays, loss composes as
  ``1 - prod(1 - p_l)``).  Per-link arrivals are *attenuated* along the
  path: a flow's contribution to a downstream link is its delayed sending
  rate multiplied by the survival product ``prod(1 - p_m)`` over upstream
  links and capped by the smallest upstream delivered capacity, so
  heavy-loss multi-hop regimes no longer overestimate downstream load
  (the packet emulator gets this for free; the two substrates now agree
  there).  The delivery rate (Eq. 17) is taken at the flow's *effective*
  bottleneck — the path link with the smallest survival-scaled capacity.
* Chains may be heterogeneous: ``parking_lot``/``multi_dumbbell`` accept
  per-hop capacity, delay and discipline sequences, exposed on the CLI as
  ``--hop-capacities``/``--hop-delays``/``--hop-disciplines`` comma-lists
  (validated against ``--hops``) on ``repro-bbr topology/sweep/campaign``.
"""

from __future__ import annotations

from collections.abc import Sequence

from .config import LinkConfig, TopologyConfig

#: Topology presets exposed on the CLI and on the sweep's topology axis.
TOPOLOGY_PRESETS = ("dumbbell", "parking-lot", "multi-dumbbell")


def dumbbell(
    num_flows: int,
    capacity_mbps: float = 100.0,
    delay_s: float = 0.010,
    buffer_bdp: float = 1.0,
    discipline: str = "droptail",
    name: str = "bottleneck",
) -> TopologyConfig:
    """One shared bottleneck traversed by every flow (the paper's Fig. 3)."""
    if num_flows < 1:
        raise ValueError("num_flows must be positive")
    link = LinkConfig(
        capacity_mbps=capacity_mbps,
        delay_s=delay_s,
        buffer_bdp=buffer_bdp,
        discipline=discipline,
        name=name,
    )
    return TopologyConfig(
        links=(link,), paths=((name,),) * num_flows, reference=name
    )


def parking_lot(
    hops: int,
    cross_flows: int = 1,
    long_flows: int = 1,
    capacity_mbps: float | Sequence[float] = 100.0,
    hop_delay_s: float | Sequence[float] = 0.010,
    buffer_bdp: float = 1.0,
    discipline: str | Sequence[str] = "droptail",
) -> TopologyConfig:
    """A chain of ``hops`` bottlenecks with per-hop cross traffic.

    Flow order (and therefore path order): first the ``long_flows`` flows
    traversing hops ``hop-1 .. hop-<hops>`` in sequence, then for each hop
    ``h`` its ``cross_flows`` single-hop flows (path ``(hop-h,)``).

    ``capacity_mbps``, ``hop_delay_s`` and ``discipline`` may be scalars
    (homogeneous chain) or per-hop sequences; the reference bottleneck
    defaults to the smallest-capacity hop (first on ties).
    """
    if hops < 1:
        raise ValueError("hops must be positive")
    if cross_flows < 0 or long_flows < 0:
        raise ValueError("flow counts must be non-negative")
    if long_flows == 0 and cross_flows == 0:
        raise ValueError("a parking lot needs at least one flow")
    capacities = _per_hop(capacity_mbps, hops, "capacity_mbps")
    delays = _per_hop(hop_delay_s, hops, "hop_delay_s")
    disciplines = _per_hop_str(discipline, hops, "discipline")
    names = tuple(f"hop-{h + 1}" for h in range(hops))
    links = tuple(
        LinkConfig(
            capacity_mbps=capacities[h],
            delay_s=delays[h],
            buffer_bdp=buffer_bdp,
            discipline=disciplines[h],
            name=names[h],
        )
        for h in range(hops)
    )
    paths: list[tuple[str, ...]] = [names] * long_flows
    for name in names:
        paths.extend([(name,)] * cross_flows)
    return TopologyConfig(links=links, paths=tuple(paths))


def multi_dumbbell(
    dumbbells: int,
    flows_per_dumbbell: int | Sequence[int] = 2,
    span_flows: int = 0,
    capacity_mbps: float | Sequence[float] = 100.0,
    delay_s: float | Sequence[float] = 0.010,
    buffer_bdp: float = 1.0,
    discipline: str | Sequence[str] = "droptail",
) -> TopologyConfig:
    """Several disjoint dumbbells, optionally coupled by spanning flows.

    Flow order: the local flows of dumbbell 1 (``bottleneck-1``), then those
    of dumbbell 2, ..., and finally the ``span_flows`` flows traversing
    every bottleneck in series (the cross-traffic coupling that lets a
    congestion event on one dumbbell spill into the others).
    """
    if dumbbells < 1:
        raise ValueError("dumbbells must be positive")
    if span_flows < 0:
        raise ValueError("span_flows must be non-negative")
    if isinstance(flows_per_dumbbell, int):
        locals_per = [flows_per_dumbbell] * dumbbells
    else:
        locals_per = [int(n) for n in flows_per_dumbbell]
        if len(locals_per) != dumbbells:
            raise ValueError("flows_per_dumbbell must list one count per dumbbell")
    if any(n < 0 for n in locals_per):
        raise ValueError("flow counts must be non-negative")
    if sum(locals_per) + span_flows == 0:
        raise ValueError("a multi-dumbbell needs at least one flow")
    capacities = _per_hop(capacity_mbps, dumbbells, "capacity_mbps")
    delays = _per_hop(delay_s, dumbbells, "delay_s")
    disciplines = _per_hop_str(discipline, dumbbells, "discipline")
    names = tuple(f"bottleneck-{j + 1}" for j in range(dumbbells))
    links = tuple(
        LinkConfig(
            capacity_mbps=capacities[j],
            delay_s=delays[j],
            buffer_bdp=buffer_bdp,
            discipline=disciplines[j],
            name=names[j],
        )
        for j in range(dumbbells)
    )
    paths: list[tuple[str, ...]] = []
    for j in range(dumbbells):
        paths.extend([(names[j],)] * locals_per[j])
    paths.extend([names] * span_flows)
    return TopologyConfig(links=links, paths=tuple(paths))


def _per_hop(value: float | Sequence[float], count: int, what: str) -> list[float]:
    """Broadcast a scalar per-hop parameter, or validate a sequence's length."""
    if isinstance(value, (int, float)):
        return [float(value)] * count
    values = [float(v) for v in value]
    if len(values) != count:
        raise ValueError(
            f"{what} must be a scalar or one value per hop "
            f"(got {len(values)} values for {count} hops)"
        )
    return values


def _per_hop_str(value: str | Sequence[str], count: int, what: str) -> list[str]:
    """Broadcast a scalar per-hop string parameter, or validate a sequence."""
    if isinstance(value, str):
        return [value] * count
    values = [str(v) for v in value]
    if len(values) != count:
        raise ValueError(
            f"{what} must be a scalar or one value per hop "
            f"(got {len(values)} values for {count} hops)"
        )
    return values

"""Scenario configuration dataclasses shared by the fluid model and the
packet-level emulator.

The paper evaluates exclusively on the dumbbell of Fig. 3: ``N`` senders,
each connected to a switch over its own unsaturated access link, and a
single shared bottleneck link between the switch and the destination.  That
remains the default scenario shape (``bottleneck=`` + ``flows=``), but a
scenario may instead carry an explicit :class:`TopologyConfig` — a set of
named queued links plus one link-name path per flow — which opens the
multi-bottleneck topologies the paper lists as future work (parking-lot
chains, multi-dumbbell cross-traffic; builders in :mod:`repro.topology`).

The legacy single-bottleneck form is a thin wrapper over a one-hop
topology: :meth:`ScenarioConfig.effective_topology` maps it onto a single
named link traversed by every flow, and both substrates consume only the
effective topology, so the two forms are interchangeable (and equivalence
is tested bit-for-bit in ``tests/test_topology.py``).

The configuration captures everything both substrates need: link
capacities, buffer sizes, propagation delays, queue disciplines, per-flow
paths, the CCA run by each sender, and numerical parameters of the fluid
model.  Buffer sizes everywhere are expressed in multiples of the
*reference-bottleneck* BDP: the reference link's capacity times the mean
propagation RTT over all flows (for a dumbbell this is the paper's
bottleneck BDP).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from collections.abc import Sequence

from . import units
from .rng import derive_rng

#: Queue disciplines supported by both the fluid model and the emulator.
QUEUE_DISCIPLINES = ("droptail", "red")

#: Congestion-control algorithms supported by both substrates.
CCA_NAMES = ("reno", "cubic", "bbr1", "bbr2")

#: Arrival processes supported by :class:`FlowSchedule`.
ARRIVAL_PROCESSES = ("staggered", "poisson", "onoff")

#: Flow-size distributions supported by :class:`FlowSchedule`.
SIZE_DISTRIBUTIONS = ("infinite", "fixed", "pareto")


@dataclass(frozen=True)
class LinkConfig:
    """Configuration of a single link.

    Attributes:
        capacity_mbps: transmission capacity in Mbps.
        delay_s: one-way propagation delay in seconds.
        buffer_bdp: buffer size expressed in multiples of the reference
            bottleneck BDP (the paper sweeps 1..7 BDP).  ``math.inf`` means
            unbounded.
        discipline: ``"droptail"`` or ``"red"``.
        name: identifier used by :class:`TopologyConfig` paths and per-link
            trace/metric output.  Optional for the legacy single-bottleneck
            form (where it defaults to ``"bottleneck"``).
    """

    capacity_mbps: float
    delay_s: float
    buffer_bdp: float = 1.0
    discipline: str = "droptail"
    name: str = ""

    def __post_init__(self) -> None:
        if self.capacity_mbps <= 0:
            raise ValueError("link capacity must be positive")
        if self.delay_s < 0:
            raise ValueError("link delay must be non-negative")
        if self.buffer_bdp <= 0:
            raise ValueError("buffer size must be positive")
        if self.discipline not in QUEUE_DISCIPLINES:
            raise ValueError(f"unknown queue discipline {self.discipline!r}")

    @property
    def capacity_pps(self) -> float:
        """Capacity in packets per second."""
        return units.mbps_to_pps(self.capacity_mbps)


@dataclass(frozen=True)
class FlowConfig:
    """Configuration of a single sender (agent).

    Attributes:
        cca: name of the congestion-control algorithm (see ``CCA_NAMES``).
        access_delay_s: one-way propagation delay of the sender's private
            access link (the heterogeneous ``d_{l_i}`` of Fig. 3).
        start_time_s: time at which the flow starts sending.
    """

    cca: str
    access_delay_s: float = 0.005
    start_time_s: float = 0.0

    def __post_init__(self) -> None:
        if self.cca not in CCA_NAMES:
            raise ValueError(f"unknown CCA {self.cca!r}; expected one of {CCA_NAMES}")
        if self.access_delay_s < 0:
            raise ValueError("access delay must be non-negative")
        if self.start_time_s < 0:
            raise ValueError("start time must be non-negative")


@dataclass(frozen=True)
class FlowArrival:
    """One materialised schedule entry: when a flow starts and how much it sends.

    Produced by :meth:`FlowSchedule.materialize`; both substrates consume
    exactly these entries, so the fluid model and the packet emulator run
    the identical workload.

    Attributes:
        start_time_s: time at which the flow starts sending.
        size_packets: finite flow size in packets (the flow completes and
            departs once it has delivered this much), or ``None`` for a
            long-lived flow that never completes.
        stop_time_s: optional hard departure time (on/off sources switch
            off here even if their size is unbounded).
    """

    start_time_s: float
    size_packets: float | None = None
    stop_time_s: float | None = None

    def __post_init__(self) -> None:
        if self.start_time_s < 0:
            raise ValueError("start time must be non-negative")
        if self.size_packets is not None and self.size_packets < 1:
            raise ValueError("flow size must be at least one packet")
        if self.stop_time_s is not None and self.stop_time_s <= self.start_time_s:
            raise ValueError("stop time must be after the start time")


@dataclass(frozen=True)
class FlowSchedule:
    """A time-varying workload: flow arrival process and flow-size distribution.

    Attached to a :class:`ScenarioConfig`, a schedule turns the static flow
    population into a churning one: flows join mid-run according to the
    arrival process and depart once they have delivered their (possibly
    heavy-tailed) size.  :meth:`materialize` expands the schedule — via the
    package's blessed :func:`~repro.rng.derive_rng` stream — into one
    explicit :class:`FlowArrival` per configured flow, and both substrates
    consume only that materialised list, so the fluid model and the packet
    emulator see the identical workload.  Schedule start times override the
    per-flow ``FlowConfig.start_time_s``.

    Attributes:
        arrivals: arrival process — ``"staggered"`` (deterministic, evenly
            spaced starts), ``"poisson"`` (exponential inter-arrivals at
            ``arrival_rate_per_s``) or ``"onoff"`` (deterministic on/off
            sources: each source is on for ``on_time_s``, with the sources'
            on-phases spread evenly over one on+off period).
        arrival_spacing_s: inter-start gap of the staggered process.
        arrival_rate_per_s: mean flow arrival rate of the Poisson process.
        on_time_s: on-period length of the on/off process.
        off_time_s: off-period length of the on/off process.
        size_dist: flow-size distribution — ``"infinite"`` (long-lived
            flows), ``"fixed"`` (every flow sends ``mean_size_packets``) or
            ``"pareto"`` (bounded Pareto on ``[min_size_packets,
            max_size_packets]`` with tail index ``pareto_shape``, the
            heavy-tailed mice-and-elephants workload).
        mean_size_packets: flow size of the ``"fixed"`` distribution.
        pareto_shape: tail index ``alpha`` of the bounded Pareto.
        min_size_packets: lower bound of the bounded Pareto.
        max_size_packets: upper bound of the bounded Pareto.
    """

    arrivals: str = "staggered"
    arrival_spacing_s: float = 0.0
    arrival_rate_per_s: float | None = None
    on_time_s: float | None = None
    off_time_s: float | None = None
    size_dist: str = "infinite"
    mean_size_packets: float | None = None
    pareto_shape: float = 1.5
    min_size_packets: float = 10.0
    max_size_packets: float | None = None

    def __post_init__(self) -> None:
        if self.arrivals not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.arrivals!r}; "
                f"expected one of {ARRIVAL_PROCESSES}"
            )
        if self.arrival_spacing_s < 0:
            raise ValueError("arrival spacing must be non-negative")
        if self.arrivals == "poisson":
            if self.arrival_rate_per_s is None or self.arrival_rate_per_s <= 0:
                raise ValueError("poisson arrivals need a positive arrival_rate_per_s")
        if self.arrivals == "onoff":
            if self.on_time_s is None or self.on_time_s <= 0:
                raise ValueError("on/off sources need a positive on_time_s")
            if self.off_time_s is None or self.off_time_s < 0:
                raise ValueError("on/off sources need a non-negative off_time_s")
        if self.size_dist not in SIZE_DISTRIBUTIONS:
            raise ValueError(
                f"unknown size distribution {self.size_dist!r}; "
                f"expected one of {SIZE_DISTRIBUTIONS}"
            )
        if self.size_dist == "fixed":
            if self.mean_size_packets is None or self.mean_size_packets < 1:
                raise ValueError("fixed sizes need mean_size_packets >= 1")
        if self.size_dist == "pareto":
            if self.pareto_shape <= 0:
                raise ValueError("pareto shape must be positive")
            if self.min_size_packets < 1:
                raise ValueError("minimum flow size must be at least one packet")
            if self.max_size_packets is None or (
                self.max_size_packets <= self.min_size_packets
            ):
                raise ValueError(
                    "bounded pareto needs max_size_packets > min_size_packets"
                )

    @property
    def uses_seed(self) -> bool:
        """Whether materialisation consumes the scenario seed (random draws)."""
        return self.arrivals == "poisson" or self.size_dist == "pareto"

    def mean_flow_size_packets(self) -> float:
        """Mean of the flow-size distribution (for offered-load calculations)."""
        if self.size_dist == "fixed":
            assert self.mean_size_packets is not None
            return self.mean_size_packets
        if self.size_dist == "pareto":
            assert self.max_size_packets is not None
            low, high, shape = (
                self.min_size_packets,
                self.max_size_packets,
                self.pareto_shape,
            )
            if shape == 1.0:
                return high * low / (high - low) * math.log(high / low)
            ratio = (low / high) ** shape
            return (low**shape / (1.0 - ratio)) * (
                shape / (shape - 1.0)
            ) * (low ** (1.0 - shape) - high ** (1.0 - shape))
        raise ValueError("infinite flows have no mean size")

    def materialize(self, num_flows: int, seed: int) -> tuple[FlowArrival, ...]:
        """Expand into one explicit :class:`FlowArrival` per flow.

        Deterministic in ``(schedule, num_flows, seed)``: all random draws
        come from the single ``derive_rng(seed, "schedule")`` stream, with a
        fixed consumption order (all inter-arrival gaps in flow order, then
        all sizes in flow order), so both substrates — and any process or
        platform — materialise the identical workload.
        """
        if num_flows <= 0:
            raise ValueError("num_flows must be positive")
        rng = derive_rng(seed, "schedule") if self.uses_seed else None
        starts: list[float]
        stops: list[float | None]
        if self.arrivals == "staggered":
            starts = [i * self.arrival_spacing_s for i in range(num_flows)]
            stops = [None] * num_flows
        elif self.arrivals == "poisson":
            assert rng is not None and self.arrival_rate_per_s is not None
            starts = [0.0]
            for _ in range(num_flows - 1):
                starts.append(starts[-1] + rng.expovariate(self.arrival_rate_per_s))
            stops = [None] * num_flows
        else:  # onoff
            assert self.on_time_s is not None and self.off_time_s is not None
            period_s = self.on_time_s + self.off_time_s
            starts = [i * period_s / num_flows for i in range(num_flows)]
            stops = [start + self.on_time_s for start in starts]
        sizes: list[float | None]
        if self.size_dist == "infinite":
            sizes = [None] * num_flows
        elif self.size_dist == "fixed":
            sizes = [self.mean_size_packets] * num_flows
        else:  # bounded pareto (inverse-CDF transform)
            assert rng is not None and self.max_size_packets is not None
            low, high, shape = (
                self.min_size_packets,
                self.max_size_packets,
                self.pareto_shape,
            )
            tail = 1.0 - (low / high) ** shape
            sizes = [
                low * (1.0 - rng.random() * tail) ** (-1.0 / shape)
                for _ in range(num_flows)
            ]
        return tuple(
            FlowArrival(start_time_s=start, size_packets=size, stop_time_s=stop)
            for start, size, stop in zip(starts, sizes, stops, strict=True)
        )


@dataclass(frozen=True)
class TopologyConfig:
    """A multi-link topology: named queued links plus one link path per flow.

    Every link is a queued (finite-capacity) link; the per-flow unsaturated
    access links of Fig. 3 are implicit — each flow still owns one, with the
    delay given by its :class:`FlowConfig.access_delay_s`.  A flow's forward
    path is therefore (its access link, then ``paths[i]`` in order), and the
    return (ACK) path is a pure propagation delay of the same total length
    (symmetric routing, as in the dumbbell).

    Attributes:
        links: the queued links.  Every link must carry a unique, non-empty
            ``name``; link buffers are expressed in multiples of the
            *reference* bottleneck BDP (see ``reference``).
        paths: one entry per flow: the ordered tuple of link names the flow
            traverses.  ``len(paths)`` must equal the scenario's flow count.
        reference: name of the reference bottleneck link that defines the
            scenario BDP (reference capacity x mean propagation RTT over all
            flows).  Defaults to the smallest-capacity link.
    """

    links: tuple[LinkConfig, ...]
    paths: tuple[tuple[str, ...], ...]
    reference: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "links", tuple(self.links))
        object.__setattr__(self, "paths", tuple(tuple(p) for p in self.paths))
        if not self.links:
            raise ValueError("a topology needs at least one link")
        names = [link.name for link in self.links]
        if any(not name for name in names):
            raise ValueError("every topology link needs a non-empty name")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate link names in topology: {names}")
        if not self.paths:
            raise ValueError("a topology needs at least one flow path")
        known = set(names)
        for i, path in enumerate(self.paths):
            if not path:
                raise ValueError(f"path of flow {i} is empty")
            unknown = [name for name in path if name not in known]
            if unknown:
                raise ValueError(f"path of flow {i} references unknown links {unknown}")
            if len(set(path)) != len(path):
                raise ValueError(f"path of flow {i} traverses a link twice: {path}")
        if not self.reference:
            smallest = min(self.links, key=lambda link: link.capacity_mbps)
            object.__setattr__(self, "reference", smallest.name)
        if self.reference not in known:
            raise ValueError(f"unknown reference link {self.reference!r}")

    @property
    def num_links(self) -> int:
        return len(self.links)

    @property
    def link_names(self) -> tuple[str, ...]:
        return tuple(link.name for link in self.links)

    def link(self, name: str) -> LinkConfig:
        """The link configuration registered under ``name``."""
        for link in self.links:
            if link.name == name:
                return link
        raise KeyError(f"unknown link {name!r}")

    @property
    def reference_link(self) -> LinkConfig:
        return self.link(self.reference)

    def path_delay_s(self, flow_index: int) -> float:
        """One-way propagation delay of a flow's queued-link path (no access link)."""
        return sum(self.link(name).delay_s for name in self.paths[flow_index])

    def with_buffer(self, buffer_bdp: float) -> TopologyConfig:
        """Copy with every link's buffer set to ``buffer_bdp`` reference BDPs."""
        return dataclasses.replace(
            self,
            links=tuple(
                dataclasses.replace(link, buffer_bdp=buffer_bdp) for link in self.links
            ),
        )

    def with_discipline(self, discipline: str) -> TopologyConfig:
        """Copy with every link's queue discipline replaced."""
        return dataclasses.replace(
            self,
            links=tuple(
                dataclasses.replace(link, discipline=discipline) for link in self.links
            ),
        )


@dataclass(frozen=True)
class FluidParams:
    """Numerical parameters of the fluid model.

    Attributes:
        dt: integration step of the method of steps, in seconds.  The paper
            uses 10 microseconds; 100 microseconds is indistinguishable at
            100 Mbps scale and an order of magnitude cheaper.
        sigmoid_sharpness: the ``K`` of Eq. (5); controls how sharply the
            smooth drop-tail loss switches on at ``y = C``.  Interpreted
            relative to the bottleneck capacity (dimensionless argument).
        droptail_exponent: the ``L`` of Eq. (4).
        loss_epsilon: loss-probability offset used where the paper applies a
            sigmoid directly to the loss probability (Eq. 30), so that zero
            loss yields no reaction.
        loss_sharpness: sharpness of sigmoid gates whose argument is a loss
            probability (values in [0, 1] need a much sharper gate than
            time-valued arguments).
        literal_xmax: if True, track the maximum of the *sending* rate in
            Eq. (18) exactly as printed; if False (default) track the maximum
            *delivery* rate as the surrounding text and BBR itself do.
        whi_init_bdp: initial value of BBRv2's ``inflight_hi`` (``w_hi``) in
            BDP multiples, or ``None`` to start it effectively unbounded.
            The paper uses a buffer-dependent initial condition to surface
            the large-buffer bufferbloat of Insight 5.
        loss_based_init_window_pkts: initial congestion window (packets) of
            the Reno and CUBIC fluid models.  The fluid models have no
            slow-start phase (Insight 9), so short aggregate scenarios use a
            window near the per-flow fair share to mimic the state reached
            after slow start.
    """

    dt: float = 1e-4
    sigmoid_sharpness: float = 200.0
    droptail_exponent: float = 20.0
    loss_epsilon: float = 5e-3
    loss_sharpness: float = 2000.0
    literal_xmax: bool = False
    whi_init_bdp: float | None = None
    loss_based_init_window_pkts: float = 10.0

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.sigmoid_sharpness <= 0:
            raise ValueError("sigmoid sharpness must be positive")
        if self.droptail_exponent < 1:
            raise ValueError("drop-tail exponent must be >= 1")
        if not 0 <= self.loss_epsilon < 1:
            raise ValueError("loss epsilon must be in [0, 1)")
        if self.loss_sharpness <= 0:
            raise ValueError("loss sharpness must be positive")
        if self.whi_init_bdp is not None and self.whi_init_bdp <= 0:
            raise ValueError("whi_init_bdp must be positive when set")
        if self.loss_based_init_window_pkts < 1:
            raise ValueError("initial window must be at least one packet")


@dataclass(frozen=True)
class ScenarioConfig:
    """A complete scenario: a dumbbell, or an explicit multi-link topology.

    Attributes:
        bottleneck: configuration of the shared bottleneck link (legacy
            single-bottleneck form).  When ``topology`` is set this field is
            a derived mirror of the topology's reference link, kept so every
            single-bottleneck accessor (``bottleneck_bdp_packets``,
            ``buffer_packets``, ...) stays meaningful; pass ``None`` then.
        flows: per-sender configurations.
        duration_s: simulated time.
        fluid: numerical parameters for the fluid-model substrate.
        seed: seed for any randomness in the packet-level emulator and for
            the materialisation of a stochastic flow schedule.
        topology: optional explicit :class:`TopologyConfig`; its ``paths``
            must list one link path per flow.  ``None`` means the implicit
            one-hop dumbbell over ``bottleneck``.
        schedule: optional :class:`FlowSchedule` turning the static flow
            population into a churning one (arrivals, finite sizes, on/off
            sources).  ``None`` — the default — keeps the legacy behaviour:
            every flow starts at its ``FlowConfig.start_time_s`` and never
            departs.  When set, the materialised schedule's start times
            override the per-flow ``start_time_s``.
    """

    bottleneck: LinkConfig | None
    flows: tuple[FlowConfig, ...]
    duration_s: float = 5.0
    fluid: FluidParams = field(default_factory=FluidParams)
    seed: int = 1
    topology: TopologyConfig | None = None
    schedule: FlowSchedule | None = None

    def __post_init__(self) -> None:
        if not self.flows:
            raise ValueError("a scenario needs at least one flow")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        object.__setattr__(self, "flows", tuple(self.flows))
        if self.topology is None:
            if self.bottleneck is None:
                raise ValueError("a scenario needs a bottleneck or a topology")
        else:
            if len(self.topology.paths) != len(self.flows):
                raise ValueError(
                    f"topology has {len(self.topology.paths)} paths for "
                    f"{len(self.flows)} flows"
                )
            # The mirror keeps the legacy single-bottleneck accessors (and
            # anything reading ``config.bottleneck``) pointed at the
            # reference link; it is always re-derived so there is a single
            # source of truth.
            object.__setattr__(self, "bottleneck", self.topology.reference_link)

    @property
    def num_flows(self) -> int:
        return len(self.flows)

    def flow_schedule(self) -> tuple[FlowArrival, ...] | None:
        """The materialised flow schedule, or ``None`` for a static population.

        Both substrates consume only this: identical :class:`FlowArrival`
        entries drive the fluid model's active-flow masks and the packet
        emulator's sender activation/teardown events.
        """
        if self.schedule is None:
            return None
        return self.schedule.materialize(self.num_flows, self.seed)

    def effective_topology(self) -> TopologyConfig:
        """The explicit topology, or the one-hop wrapper over ``bottleneck``.

        Both substrates consume only this: the legacy dumbbell is exactly a
        one-hop topology whose single link every flow traverses.
        """
        if self.topology is not None:
            return self.topology
        link = self.bottleneck
        if not link.name:
            link = dataclasses.replace(link, name="bottleneck")
        return TopologyConfig(
            links=(link,), paths=((link.name,),) * self.num_flows, reference=link.name
        )

    def rtt_s(self, flow_index: int) -> float:
        """Two-way propagation delay of a flow's path (no queueing)."""
        flow = self.flows[flow_index]
        if self.topology is not None:
            return 2.0 * (flow.access_delay_s + self.topology.path_delay_s(flow_index))
        return 2.0 * (flow.access_delay_s + self.bottleneck.delay_s)

    def mean_rtt_s(self) -> float:
        """Mean propagation RTT over all flows."""
        return sum(self.rtt_s(i) for i in range(self.num_flows)) / self.num_flows

    def bottleneck_bdp_packets(self) -> float:
        """Reference-bottleneck BDP in packets using the mean propagation RTT."""
        return units.bdp_packets(self.bottleneck.capacity_pps, self.mean_rtt_s())

    def buffer_packets(self) -> float:
        """Reference-bottleneck buffer size in packets."""
        return self.link_buffer_packets(self.bottleneck)

    def link_buffer_packets(self, link: LinkConfig | str) -> float:
        """Buffer size of a topology link in packets (reference-BDP scaled)."""
        if isinstance(link, str):
            link = self.effective_topology().link(link)
        if math.isinf(link.buffer_bdp):
            return math.inf
        return link.buffer_bdp * self.bottleneck_bdp_packets()

    def with_buffer(self, buffer_bdp: float) -> ScenarioConfig:
        """Return a copy with a different buffer size (every queued link)."""
        if self.topology is not None:
            return dataclasses.replace(
                self, topology=self.topology.with_buffer(buffer_bdp)
            )
        return dataclasses.replace(
            self, bottleneck=dataclasses.replace(self.bottleneck, buffer_bdp=buffer_bdp)
        )

    def with_discipline(self, discipline: str) -> ScenarioConfig:
        """Return a copy with a different queue discipline (every queued link)."""
        if self.topology is not None:
            return dataclasses.replace(
                self, topology=self.topology.with_discipline(discipline)
            )
        return dataclasses.replace(
            self, bottleneck=dataclasses.replace(self.bottleneck, discipline=discipline)
        )

    def with_duration(self, duration_s: float) -> ScenarioConfig:
        """Return a copy of the scenario with a different duration."""
        return dataclasses.replace(self, duration_s=duration_s)


def spread_access_delays(
    num_flows: int,
    rtt_range_s: tuple[float, float],
    bottleneck_delay_s: float,
) -> list[float]:
    """Deterministically spread access-link delays so that flow RTTs cover a range.

    The paper selects total RTTs "randomly between 30 and 40 ms"; the fluid
    model is deterministic, so we spread the RTTs evenly over the requested
    range (which is what a uniform random draw converges to in distribution)
    and let the packet emulator reuse the same values for comparability.
    """
    low, high = rtt_range_s
    if low > high:
        raise ValueError("rtt range must be ordered (low, high)")
    if low < 2 * bottleneck_delay_s:
        raise ValueError(
            "minimum RTT cannot be smaller than the bottleneck round-trip delay"
        )
    if num_flows <= 0:
        raise ValueError("num_flows must be positive")
    delays = []
    for i in range(num_flows):
        if num_flows == 1:
            rtt = (low + high) / 2.0
        else:
            rtt = low + (high - low) * i / (num_flows - 1)
        delays.append((rtt - 2 * bottleneck_delay_s) / 2.0)
    return delays


def dumbbell_scenario(
    ccas: Sequence[str],
    capacity_mbps: float = 100.0,
    bottleneck_delay_s: float = 0.010,
    rtt_range_s: tuple[float, float] = (0.030, 0.040),
    buffer_bdp: float = 1.0,
    discipline: str = "droptail",
    duration_s: float = 5.0,
    fluid: FluidParams | None = None,
    seed: int = 1,
) -> ScenarioConfig:
    """Build the canonical dumbbell scenario of the paper's evaluation.

    ``ccas`` lists one CCA name per sender; heterogeneous mixes are expressed
    by listing different names (e.g. 5x ``"bbr1"`` + 5x ``"reno"``).
    """
    access = spread_access_delays(len(ccas), rtt_range_s, bottleneck_delay_s)
    flows = tuple(
        FlowConfig(cca=cca, access_delay_s=delay)
        for cca, delay in zip(ccas, access, strict=True)
    )
    return ScenarioConfig(
        bottleneck=LinkConfig(
            capacity_mbps=capacity_mbps,
            delay_s=bottleneck_delay_s,
            buffer_bdp=buffer_bdp,
            discipline=discipline,
        ),
        flows=flows,
        duration_s=duration_s,
        fluid=fluid or FluidParams(),
        seed=seed,
    )

"""Scenario configuration dataclasses shared by the fluid model and the
packet-level emulator.

The paper evaluates exclusively on the dumbbell of Fig. 3: ``N`` senders,
each connected to a switch over its own unsaturated access link, and a
single shared bottleneck link between the switch and the destination.  That
remains the default scenario shape (``bottleneck=`` + ``flows=``), but a
scenario may instead carry an explicit :class:`TopologyConfig` — a set of
named queued links plus one link-name path per flow — which opens the
multi-bottleneck topologies the paper lists as future work (parking-lot
chains, multi-dumbbell cross-traffic; builders in :mod:`repro.topology`).

The legacy single-bottleneck form is a thin wrapper over a one-hop
topology: :meth:`ScenarioConfig.effective_topology` maps it onto a single
named link traversed by every flow, and both substrates consume only the
effective topology, so the two forms are interchangeable (and equivalence
is tested bit-for-bit in ``tests/test_topology.py``).

The configuration captures everything both substrates need: link
capacities, buffer sizes, propagation delays, queue disciplines, per-flow
paths, the CCA run by each sender, and numerical parameters of the fluid
model.  Buffer sizes everywhere are expressed in multiples of the
*reference-bottleneck* BDP: the reference link's capacity times the mean
propagation RTT over all flows (for a dumbbell this is the paper's
bottleneck BDP).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from collections.abc import Sequence

from . import units

#: Queue disciplines supported by both the fluid model and the emulator.
QUEUE_DISCIPLINES = ("droptail", "red")

#: Congestion-control algorithms supported by both substrates.
CCA_NAMES = ("reno", "cubic", "bbr1", "bbr2")


@dataclass(frozen=True)
class LinkConfig:
    """Configuration of a single link.

    Attributes:
        capacity_mbps: transmission capacity in Mbps.
        delay_s: one-way propagation delay in seconds.
        buffer_bdp: buffer size expressed in multiples of the reference
            bottleneck BDP (the paper sweeps 1..7 BDP).  ``math.inf`` means
            unbounded.
        discipline: ``"droptail"`` or ``"red"``.
        name: identifier used by :class:`TopologyConfig` paths and per-link
            trace/metric output.  Optional for the legacy single-bottleneck
            form (where it defaults to ``"bottleneck"``).
    """

    capacity_mbps: float
    delay_s: float
    buffer_bdp: float = 1.0
    discipline: str = "droptail"
    name: str = ""

    def __post_init__(self) -> None:
        if self.capacity_mbps <= 0:
            raise ValueError("link capacity must be positive")
        if self.delay_s < 0:
            raise ValueError("link delay must be non-negative")
        if self.buffer_bdp <= 0:
            raise ValueError("buffer size must be positive")
        if self.discipline not in QUEUE_DISCIPLINES:
            raise ValueError(f"unknown queue discipline {self.discipline!r}")

    @property
    def capacity_pps(self) -> float:
        """Capacity in packets per second."""
        return units.mbps_to_pps(self.capacity_mbps)


@dataclass(frozen=True)
class FlowConfig:
    """Configuration of a single sender (agent).

    Attributes:
        cca: name of the congestion-control algorithm (see ``CCA_NAMES``).
        access_delay_s: one-way propagation delay of the sender's private
            access link (the heterogeneous ``d_{l_i}`` of Fig. 3).
        start_time_s: time at which the flow starts sending.
    """

    cca: str
    access_delay_s: float = 0.005
    start_time_s: float = 0.0

    def __post_init__(self) -> None:
        if self.cca not in CCA_NAMES:
            raise ValueError(f"unknown CCA {self.cca!r}; expected one of {CCA_NAMES}")
        if self.access_delay_s < 0:
            raise ValueError("access delay must be non-negative")
        if self.start_time_s < 0:
            raise ValueError("start time must be non-negative")


@dataclass(frozen=True)
class TopologyConfig:
    """A multi-link topology: named queued links plus one link path per flow.

    Every link is a queued (finite-capacity) link; the per-flow unsaturated
    access links of Fig. 3 are implicit — each flow still owns one, with the
    delay given by its :class:`FlowConfig.access_delay_s`.  A flow's forward
    path is therefore (its access link, then ``paths[i]`` in order), and the
    return (ACK) path is a pure propagation delay of the same total length
    (symmetric routing, as in the dumbbell).

    Attributes:
        links: the queued links.  Every link must carry a unique, non-empty
            ``name``; link buffers are expressed in multiples of the
            *reference* bottleneck BDP (see ``reference``).
        paths: one entry per flow: the ordered tuple of link names the flow
            traverses.  ``len(paths)`` must equal the scenario's flow count.
        reference: name of the reference bottleneck link that defines the
            scenario BDP (reference capacity x mean propagation RTT over all
            flows).  Defaults to the smallest-capacity link.
    """

    links: tuple[LinkConfig, ...]
    paths: tuple[tuple[str, ...], ...]
    reference: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "links", tuple(self.links))
        object.__setattr__(self, "paths", tuple(tuple(p) for p in self.paths))
        if not self.links:
            raise ValueError("a topology needs at least one link")
        names = [link.name for link in self.links]
        if any(not name for name in names):
            raise ValueError("every topology link needs a non-empty name")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate link names in topology: {names}")
        if not self.paths:
            raise ValueError("a topology needs at least one flow path")
        known = set(names)
        for i, path in enumerate(self.paths):
            if not path:
                raise ValueError(f"path of flow {i} is empty")
            unknown = [name for name in path if name not in known]
            if unknown:
                raise ValueError(f"path of flow {i} references unknown links {unknown}")
            if len(set(path)) != len(path):
                raise ValueError(f"path of flow {i} traverses a link twice: {path}")
        if not self.reference:
            smallest = min(self.links, key=lambda link: link.capacity_mbps)
            object.__setattr__(self, "reference", smallest.name)
        if self.reference not in known:
            raise ValueError(f"unknown reference link {self.reference!r}")

    @property
    def num_links(self) -> int:
        return len(self.links)

    @property
    def link_names(self) -> tuple[str, ...]:
        return tuple(link.name for link in self.links)

    def link(self, name: str) -> LinkConfig:
        """The link configuration registered under ``name``."""
        for link in self.links:
            if link.name == name:
                return link
        raise KeyError(f"unknown link {name!r}")

    @property
    def reference_link(self) -> LinkConfig:
        return self.link(self.reference)

    def path_delay_s(self, flow_index: int) -> float:
        """One-way propagation delay of a flow's queued-link path (no access link)."""
        return sum(self.link(name).delay_s for name in self.paths[flow_index])

    def with_buffer(self, buffer_bdp: float) -> TopologyConfig:
        """Copy with every link's buffer set to ``buffer_bdp`` reference BDPs."""
        return dataclasses.replace(
            self,
            links=tuple(
                dataclasses.replace(link, buffer_bdp=buffer_bdp) for link in self.links
            ),
        )

    def with_discipline(self, discipline: str) -> TopologyConfig:
        """Copy with every link's queue discipline replaced."""
        return dataclasses.replace(
            self,
            links=tuple(
                dataclasses.replace(link, discipline=discipline) for link in self.links
            ),
        )


@dataclass(frozen=True)
class FluidParams:
    """Numerical parameters of the fluid model.

    Attributes:
        dt: integration step of the method of steps, in seconds.  The paper
            uses 10 microseconds; 100 microseconds is indistinguishable at
            100 Mbps scale and an order of magnitude cheaper.
        sigmoid_sharpness: the ``K`` of Eq. (5); controls how sharply the
            smooth drop-tail loss switches on at ``y = C``.  Interpreted
            relative to the bottleneck capacity (dimensionless argument).
        droptail_exponent: the ``L`` of Eq. (4).
        loss_epsilon: loss-probability offset used where the paper applies a
            sigmoid directly to the loss probability (Eq. 30), so that zero
            loss yields no reaction.
        loss_sharpness: sharpness of sigmoid gates whose argument is a loss
            probability (values in [0, 1] need a much sharper gate than
            time-valued arguments).
        literal_xmax: if True, track the maximum of the *sending* rate in
            Eq. (18) exactly as printed; if False (default) track the maximum
            *delivery* rate as the surrounding text and BBR itself do.
        whi_init_bdp: initial value of BBRv2's ``inflight_hi`` (``w_hi``) in
            BDP multiples, or ``None`` to start it effectively unbounded.
            The paper uses a buffer-dependent initial condition to surface
            the large-buffer bufferbloat of Insight 5.
        loss_based_init_window_pkts: initial congestion window (packets) of
            the Reno and CUBIC fluid models.  The fluid models have no
            slow-start phase (Insight 9), so short aggregate scenarios use a
            window near the per-flow fair share to mimic the state reached
            after slow start.
    """

    dt: float = 1e-4
    sigmoid_sharpness: float = 200.0
    droptail_exponent: float = 20.0
    loss_epsilon: float = 5e-3
    loss_sharpness: float = 2000.0
    literal_xmax: bool = False
    whi_init_bdp: float | None = None
    loss_based_init_window_pkts: float = 10.0

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.sigmoid_sharpness <= 0:
            raise ValueError("sigmoid sharpness must be positive")
        if self.droptail_exponent < 1:
            raise ValueError("drop-tail exponent must be >= 1")
        if not 0 <= self.loss_epsilon < 1:
            raise ValueError("loss epsilon must be in [0, 1)")
        if self.loss_sharpness <= 0:
            raise ValueError("loss sharpness must be positive")
        if self.whi_init_bdp is not None and self.whi_init_bdp <= 0:
            raise ValueError("whi_init_bdp must be positive when set")
        if self.loss_based_init_window_pkts < 1:
            raise ValueError("initial window must be at least one packet")


@dataclass(frozen=True)
class ScenarioConfig:
    """A complete scenario: a dumbbell, or an explicit multi-link topology.

    Attributes:
        bottleneck: configuration of the shared bottleneck link (legacy
            single-bottleneck form).  When ``topology`` is set this field is
            a derived mirror of the topology's reference link, kept so every
            single-bottleneck accessor (``bottleneck_bdp_packets``,
            ``buffer_packets``, ...) stays meaningful; pass ``None`` then.
        flows: per-sender configurations.
        duration_s: simulated time.
        fluid: numerical parameters for the fluid-model substrate.
        seed: seed for any randomness in the packet-level emulator.
        topology: optional explicit :class:`TopologyConfig`; its ``paths``
            must list one link path per flow.  ``None`` means the implicit
            one-hop dumbbell over ``bottleneck``.
    """

    bottleneck: LinkConfig | None
    flows: tuple[FlowConfig, ...]
    duration_s: float = 5.0
    fluid: FluidParams = field(default_factory=FluidParams)
    seed: int = 1
    topology: TopologyConfig | None = None

    def __post_init__(self) -> None:
        if not self.flows:
            raise ValueError("a scenario needs at least one flow")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        object.__setattr__(self, "flows", tuple(self.flows))
        if self.topology is None:
            if self.bottleneck is None:
                raise ValueError("a scenario needs a bottleneck or a topology")
        else:
            if len(self.topology.paths) != len(self.flows):
                raise ValueError(
                    f"topology has {len(self.topology.paths)} paths for "
                    f"{len(self.flows)} flows"
                )
            # The mirror keeps the legacy single-bottleneck accessors (and
            # anything reading ``config.bottleneck``) pointed at the
            # reference link; it is always re-derived so there is a single
            # source of truth.
            object.__setattr__(self, "bottleneck", self.topology.reference_link)

    @property
    def num_flows(self) -> int:
        return len(self.flows)

    def effective_topology(self) -> TopologyConfig:
        """The explicit topology, or the one-hop wrapper over ``bottleneck``.

        Both substrates consume only this: the legacy dumbbell is exactly a
        one-hop topology whose single link every flow traverses.
        """
        if self.topology is not None:
            return self.topology
        link = self.bottleneck
        if not link.name:
            link = dataclasses.replace(link, name="bottleneck")
        return TopologyConfig(
            links=(link,), paths=((link.name,),) * self.num_flows, reference=link.name
        )

    def rtt_s(self, flow_index: int) -> float:
        """Two-way propagation delay of a flow's path (no queueing)."""
        flow = self.flows[flow_index]
        if self.topology is not None:
            return 2.0 * (flow.access_delay_s + self.topology.path_delay_s(flow_index))
        return 2.0 * (flow.access_delay_s + self.bottleneck.delay_s)

    def mean_rtt_s(self) -> float:
        """Mean propagation RTT over all flows."""
        return sum(self.rtt_s(i) for i in range(self.num_flows)) / self.num_flows

    def bottleneck_bdp_packets(self) -> float:
        """Reference-bottleneck BDP in packets using the mean propagation RTT."""
        return units.bdp_packets(self.bottleneck.capacity_pps, self.mean_rtt_s())

    def buffer_packets(self) -> float:
        """Reference-bottleneck buffer size in packets."""
        return self.link_buffer_packets(self.bottleneck)

    def link_buffer_packets(self, link: LinkConfig | str) -> float:
        """Buffer size of a topology link in packets (reference-BDP scaled)."""
        if isinstance(link, str):
            link = self.effective_topology().link(link)
        if math.isinf(link.buffer_bdp):
            return math.inf
        return link.buffer_bdp * self.bottleneck_bdp_packets()

    def with_buffer(self, buffer_bdp: float) -> ScenarioConfig:
        """Return a copy with a different buffer size (every queued link)."""
        if self.topology is not None:
            return dataclasses.replace(
                self, topology=self.topology.with_buffer(buffer_bdp)
            )
        return dataclasses.replace(
            self, bottleneck=dataclasses.replace(self.bottleneck, buffer_bdp=buffer_bdp)
        )

    def with_discipline(self, discipline: str) -> ScenarioConfig:
        """Return a copy with a different queue discipline (every queued link)."""
        if self.topology is not None:
            return dataclasses.replace(
                self, topology=self.topology.with_discipline(discipline)
            )
        return dataclasses.replace(
            self, bottleneck=dataclasses.replace(self.bottleneck, discipline=discipline)
        )

    def with_duration(self, duration_s: float) -> ScenarioConfig:
        """Return a copy of the scenario with a different duration."""
        return dataclasses.replace(self, duration_s=duration_s)


def spread_access_delays(
    num_flows: int,
    rtt_range_s: tuple[float, float],
    bottleneck_delay_s: float,
) -> list[float]:
    """Deterministically spread access-link delays so that flow RTTs cover a range.

    The paper selects total RTTs "randomly between 30 and 40 ms"; the fluid
    model is deterministic, so we spread the RTTs evenly over the requested
    range (which is what a uniform random draw converges to in distribution)
    and let the packet emulator reuse the same values for comparability.
    """
    low, high = rtt_range_s
    if low > high:
        raise ValueError("rtt range must be ordered (low, high)")
    if low < 2 * bottleneck_delay_s:
        raise ValueError(
            "minimum RTT cannot be smaller than the bottleneck round-trip delay"
        )
    if num_flows <= 0:
        raise ValueError("num_flows must be positive")
    delays = []
    for i in range(num_flows):
        if num_flows == 1:
            rtt = (low + high) / 2.0
        else:
            rtt = low + (high - low) * i / (num_flows - 1)
        delays.append((rtt - 2 * bottleneck_delay_s) / 2.0)
    return delays


def dumbbell_scenario(
    ccas: Sequence[str],
    capacity_mbps: float = 100.0,
    bottleneck_delay_s: float = 0.010,
    rtt_range_s: tuple[float, float] = (0.030, 0.040),
    buffer_bdp: float = 1.0,
    discipline: str = "droptail",
    duration_s: float = 5.0,
    fluid: FluidParams | None = None,
    seed: int = 1,
) -> ScenarioConfig:
    """Build the canonical dumbbell scenario of the paper's evaluation.

    ``ccas`` lists one CCA name per sender; heterogeneous mixes are expressed
    by listing different names (e.g. 5x ``"bbr1"`` + 5x ``"reno"``).
    """
    access = spread_access_delays(len(ccas), rtt_range_s, bottleneck_delay_s)
    flows = tuple(
        FlowConfig(cca=cca, access_delay_s=delay)
        for cca, delay in zip(ccas, access, strict=True)
    )
    return ScenarioConfig(
        bottleneck=LinkConfig(
            capacity_mbps=capacity_mbps,
            delay_s=bottleneck_delay_s,
            buffer_bdp=buffer_bdp,
            discipline=discipline,
        ),
        flows=flows,
        duration_s=duration_s,
        fluid=fluid or FluidParams(),
        seed=seed,
    )

"""Quickstart: simulate BBRv1 sharing a bottleneck with Reno.

Runs the fluid model of the paper on a small dumbbell scenario, prints the
aggregate metrics, and shows how the same scenario is replayed on the
packet-level emulator for comparison.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.config import FluidParams, dumbbell_scenario
from repro.core import simulate
from repro.emulation import emulate
from repro.experiments import report
from repro.metrics import aggregate_metrics, per_cca_share


def main() -> None:
    # Five BBRv1 senders compete with five Reno senders on a 100 Mbps
    # bottleneck with a 2 BDP drop-tail buffer (the paper's Fig. 6 setting).
    config = dumbbell_scenario(
        ["bbr1"] * 5 + ["reno"] * 5,
        capacity_mbps=100.0,
        buffer_bdp=2.0,
        discipline="droptail",
        duration_s=4.0,
        fluid=FluidParams(dt=2.5e-4, loss_based_init_window_pkts=30.0),
    )

    print("Fluid model (the paper's contribution):")
    fluid_trace = simulate(config)
    fluid_metrics = aggregate_metrics(fluid_trace)
    rows = [[key, value] for key, value in fluid_metrics.as_dict().items()]
    print(report.format_table(["metric", "value"], rows))
    shares = per_cca_share(fluid_trace)
    print(f"\nPer-CCA share of the bottleneck: {shares}")
    print("BBRv1 claims the dominant share, as the paper's Insight 2 describes.\n")

    print("Packet-level emulator (the validation substrate):")
    emu_trace = emulate(config)
    emu_metrics = aggregate_metrics(emu_trace)
    rows = [[key, value] for key, value in emu_metrics.as_dict().items()]
    print(report.format_table(["metric", "value"], rows))


if __name__ == "__main__":
    main()

"""Trace validation: compare fluid-model and packet-level traces for one CCA.

Reproduces the single-flow trace validation of Figs. 4/5/11/12: the same
scenario (100 Mbps bottleneck, 31.2 ms RTT, 1 BDP buffer) is run on the
fluid model and on the packet-level emulator, and the normalised series
(rate, queue, loss, excess RTT) are printed side by side at a coarse grid.

Usage::

    python examples/trace_validation.py [bbr1|bbr2|reno|cubic] [droptail|red]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core import simulate
from repro.emulation import emulate
from repro.experiments import scenarios


def main(cca: str = "bbr1", discipline: str = "droptail") -> None:
    config = scenarios.trace_validation_scenario(
        cca, discipline=discipline, duration_s=10.0, dt=2.5e-4
    )
    fluid = simulate(config).normalized_rows()
    emulated = emulate(config).normalized_rows()

    print(f"Trace validation for {cca} under {discipline} (values in %)")
    print(f"{'t [s]':>6} | {'rate (model)':>12} {'rate (emu)':>11} | "
          f"{'queue (model)':>13} {'queue (emu)':>12}")
    for t in np.arange(0.5, 10.0, 0.5):
        kf = int(np.searchsorted(fluid["time"], t))
        ke = int(np.searchsorted(emulated["time"], t))
        kf = min(kf, len(fluid["time"]) - 1)
        ke = min(ke, len(emulated["time"]) - 1)
        print(
            f"{t:6.1f} | {fluid['rate_pct'][kf]:12.1f} {emulated['rate_pct'][ke]:11.1f} | "
            f"{fluid['queue_pct'][kf]:13.1f} {emulated['queue_pct'][ke]:12.1f}"
        )
    print(
        f"\nmean rate: model={np.mean(fluid['rate_pct']):.1f}%  "
        f"emulation={np.mean(emulated['rate_pct']):.1f}%"
    )
    print(
        f"mean queue: model={np.mean(fluid['queue_pct']):.1f}%  "
        f"emulation={np.mean(emulated['queue_pct']):.1f}%"
    )


if __name__ == "__main__":
    cca = sys.argv[1] if len(sys.argv) > 1 else "bbr1"
    discipline = sys.argv[2] if len(sys.argv) > 2 else "droptail"
    main(cca, discipline)

"""Stability analysis: equilibria of BBRv1/BBRv2 and convergence of the reduced models.

Reproduces the theoretical results of Section 5 (Theorems 1-5): the
closed-form equilibria, the Lyapunov (indirect-method) stability checks, and
a numerical integration of the reduced models showing convergence from a
perturbed initial state.

Usage::

    python examples/stability_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    SingleBottleneck,
    bbr1_deep_buffer_equilibrium,
    bbr1_shallow_buffer_equilibrium,
    bbr2_fair_equilibrium,
    check_bbr1_deep_buffer_stability,
    check_bbr1_shallow_buffer_stability,
    check_bbr2_stability,
    integrate_reduced,
)
from repro.experiments import report
from repro.units import mbps_to_pps


def main() -> None:
    capacity = mbps_to_pps(100.0)
    delay = 0.035
    rows = []
    for n in (2, 5, 10, 50):
        net = SingleBottleneck(capacity, (delay,) * n)
        deep = bbr1_deep_buffer_equilibrium(net)
        shallow = bbr1_shallow_buffer_equilibrium(net)
        fair_v2 = bbr2_fair_equilibrium(net)
        rows.append(
            [
                n,
                deep.queue_pkts,
                check_bbr1_deep_buffer_stability(delay).max_real_part,
                shallow.rates_pps[0],
                check_bbr1_shallow_buffer_stability(n).max_real_part,
                fair_v2.queue_pkts,
                check_bbr2_stability(n, delay).max_real_part,
            ]
        )
    print("Equilibria and leading Jacobian eigenvalues (all negative => stable)")
    print(
        report.format_table(
            [
                "N",
                "thm1 queue [pkts]",
                "thm2 max eig",
                "thm3 rate [pps]",
                "thm3 max eig",
                "thm4 queue [pkts]",
                "thm5 max eig",
            ],
            rows,
        )
    )

    print("\nConvergence of the reduced BBRv2 model from a perturbed start:")
    n = 10
    net = SingleBottleneck(capacity, (delay,) * n)
    x0 = capacity / n * np.linspace(0.5, 1.5, n)
    time, states = integrate_reduced("bbr2", net, x0, queue0=0.0, duration_s=60.0)
    expected = (n - 1) / (4 * n + 1) * delay * capacity
    for t in (0.0, 5.0, 20.0, 60.0):
        k = int(np.searchsorted(time, t, side="right")) - 1
        spread = np.max(states[k, :-1]) / np.min(states[k, :-1])
        print(
            f"  t={t:5.1f}s  queue={states[k, -1]:7.1f} pkts "
            f"(equilibrium {expected:.1f})  max/min rate ratio={spread:.3f}"
        )


if __name__ == "__main__":
    main()

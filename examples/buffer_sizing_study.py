"""Buffer-sizing study: how fairness, loss and queuing depend on buffer depth.

Reproduces a slice of the paper's Figs. 6-8 for a chosen set of CCA mixes:
the fluid model is swept over buffer sizes under drop-tail and RED queueing
and the resulting metrics are printed as tables and written to CSV.

Usage::

    python examples/buffer_sizing_study.py [output.csv]
"""

from __future__ import annotations

import sys

from repro.experiments import report, sweep


def main(csv_path: str | None = None) -> None:
    mixes = ["BBRv1", "BBRv2", "BBRv1/RENO", "BBRv2/RENO"]
    buffers = [1.0, 2.0, 4.0, 7.0]

    points = sweep.run_sweep(
        mixes=mixes,
        buffers_bdp=buffers,
        disciplines=["droptail", "red"],
        duration_s=4.0,
    )

    for metric, title in [
        ("jain_fairness", "Jain fairness (Fig. 6)"),
        ("loss_percent", "Loss [%] (Fig. 7)"),
        ("buffer_occupancy_percent", "Buffer occupancy [%] (Fig. 8)"),
    ]:
        for discipline in ("droptail", "red"):
            series = {
                mix: sweep.series(points, metric, mix, discipline) for mix in mixes
            }
            print(report.series_table(f"{title} [{discipline}]", series))
            print()

    if csv_path:
        rows = [point.row() for point in points]
        path = report.write_csv(csv_path, rows)
        print(f"Wrote the full sweep to {path}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
